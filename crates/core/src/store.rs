//! Versioned catalog snapshot store: one [`CatalogStore`] abstraction in
//! front of every load/store call site, a compact byte-stable binary
//! format behind it, and per-model deltas on top.
//!
//! The text format in [`crate::persist`] stays the human-readable
//! interchange form; this module adds the machine form the serving paths
//! load at startup:
//!
//! * **Snapshots.** A [`CatalogSnapshot`] pairs a [`GlobalCatalog`] with a
//!   monotone `version` aligned with [`crate::registry::ModelRegistry`]
//!   versions (the registry's publish counter). Binary files open with a
//!   `MDBC` magic plus a little-endian `u32` format version, then carry
//!   length-prefixed frames; every `f64` travels as its little-endian
//!   IEEE-754 bit pattern in the variable-length encoding of
//!   [`mdbs_stats::suffstats::push_f64_compact`] (low-order zero bytes
//!   dropped), so coefficients and Gram blocks round-trip bit for bit —
//!   no float formatting or parsing anywhere on the path — while
//!   integer-valued Gram sums stay only a few bytes wide.
//! * **Deltas.** A [`CatalogDelta`] names the base snapshot version it
//!   applies to and carries only the entries that changed: replaced
//!   models/estimators as full bodies, and accumulator growth as a folded
//!   [`ModelAccumulator`] increment that replay *merges* into the stored
//!   block — the same operation the producer used, so a replayed chain is
//!   byte-identical to the producer's own snapshot
//!   ([`CatalogSnapshot::apply_delta`] is the single implementation both
//!   sides go through). Appending a delta frame writes O(delta) bytes
//!   regardless of catalog size.
//! * **Files.** [`FileCatalogStore`] sniffs the on-disk format (magic ⇒
//!   binary, `mdbs-catalog` ⇒ text), loads either, and writes whichever
//!   format it was configured with — the CLI's `archive`/`restore`
//!   subcommands are thin wrappers over it.

use crate::catalog::{GlobalCatalog, SiteId};
use crate::classes::QueryClass;
use crate::model::{CostModel, FitStats, ModelAccumulator, ModelForm};
use crate::probing::ProbeCostEstimator;
use crate::qualvar::StateSet;
use crate::CoreError;
use mdbs_obs::Telemetry;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Magic bytes opening every binary catalog file.
pub const BINARY_MAGIC: [u8; 4] = *b"MDBC";

/// Binary container format version (little-endian `u32` after the magic).
pub const BINARY_FORMAT_VERSION: u32 = 1;

/// Frame tag of a full snapshot.
const FRAME_SNAPSHOT: u8 = b'S';
/// Frame tag of a delta against the running snapshot.
const FRAME_DELTA: u8 = b'D';

/// Entry kinds within a snapshot frame.
const ENTRY_MODEL: u8 = 1;
const ENTRY_GRAM: u8 = 2;
const ENTRY_PROBE: u8 = 3;

/// Operation kinds within a delta frame.
const OP_PUT_MODEL: u8 = 1;
const OP_PUT_GRAM: u8 = 2;
const OP_PUT_PROBE: u8 = 3;
const OP_MERGE_GRAM: u8 = 4;

/// Class byte reserved for entries that carry no query class (probe
/// estimators are per-site).
const NO_CLASS: u8 = 0xff;

fn bin_err(msg: impl Into<String>) -> CoreError {
    CoreError::Degenerate(format!("catalog binary error: {}", msg.into()))
}

/// The serialization format of a catalog file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CatalogFormat {
    /// The line-oriented human-readable format of [`crate::persist`].
    Text,
    /// The compact length-prefixed binary format of this module.
    Binary,
}

impl CatalogFormat {
    /// Stable textual tag (the CLI's `--format` values).
    pub fn as_str(self) -> &'static str {
        match self {
            CatalogFormat::Text => "text",
            CatalogFormat::Binary => "binary",
        }
    }

    /// Parses the stable tag.
    pub fn parse(s: &str) -> Result<CatalogFormat, CoreError> {
        match s {
            "text" => Ok(CatalogFormat::Text),
            "binary" => Ok(CatalogFormat::Binary),
            other => Err(CoreError::Degenerate(format!(
                "unknown catalog format `{other}` (expected `text` or `binary`)"
            ))),
        }
    }
}

/// A versioned catalog state: the catalog plus the monotone snapshot
/// version it represents (0 = unversioned/empty history).
#[derive(Debug, Clone, Default)]
pub struct CatalogSnapshot {
    /// Monotone snapshot version, aligned with
    /// [`crate::registry::ModelRegistry::version`].
    pub version: u64,
    /// The catalog content.
    pub catalog: GlobalCatalog,
}

impl CatalogSnapshot {
    /// An empty, unversioned snapshot.
    pub fn new() -> CatalogSnapshot {
        CatalogSnapshot::default()
    }

    /// Wraps a catalog at a given version.
    pub fn at_version(catalog: GlobalCatalog, version: u64) -> CatalogSnapshot {
        CatalogSnapshot { version, catalog }
    }

    /// Applies a delta in place. This is the **only** mutation path for
    /// delta semantics — producers advance their own snapshot through it
    /// before appending the delta to a store, so a restore that replays
    /// the chain lands on bit-identical bytes by construction.
    ///
    /// Fails without modifying `self` when the delta's base version does
    /// not match the snapshot's current version, or when a merge targets
    /// a missing or shape-mismatched accumulator.
    pub fn apply_delta(&mut self, delta: &CatalogDelta) -> Result<(), CoreError> {
        if delta.base_version != self.version {
            return Err(bin_err(format!(
                "delta expects base snapshot version {} but the snapshot is at version {}",
                delta.base_version, self.version
            )));
        }
        if delta.version <= delta.base_version {
            return Err(bin_err(format!(
                "delta version {} does not advance past its base {}",
                delta.version, delta.base_version
            )));
        }
        // Validate merges up front so a failed apply leaves `self` intact.
        for entry in &delta.entries {
            if let DeltaEntry::MergeAccumulator(site, class, inc) = entry {
                match self.catalog.accumulator(site, *class) {
                    None => {
                        return Err(bin_err(format!(
                            "delta merges into missing accumulator {site}/{}",
                            class.as_str()
                        )))
                    }
                    Some(base) => check_merge_shape(base, inc, site, *class)?,
                }
            }
        }
        for entry in &delta.entries {
            match entry {
                DeltaEntry::PutModel(site, class, model) => {
                    self.catalog
                        .insert_model(site.clone(), *class, model.clone());
                }
                DeltaEntry::PutAccumulator(site, class, acc) => {
                    self.catalog
                        .insert_accumulator(site.clone(), *class, acc.clone());
                }
                DeltaEntry::PutProbeEstimator(site, est) => {
                    self.catalog
                        .insert_probe_estimator(site.clone(), est.clone());
                }
                DeltaEntry::MergeAccumulator(site, class, inc) => {
                    let mut merged = self
                        .catalog
                        .accumulator(site, *class)
                        .expect("validated above")
                        .clone();
                    merged.merge(inc)?;
                    self.catalog
                        .insert_accumulator(site.clone(), *class, merged);
                }
            }
        }
        self.version = delta.version;
        Ok(())
    }
}

fn check_merge_shape(
    base: &ModelAccumulator,
    inc: &ModelAccumulator,
    site: &SiteId,
    class: QueryClass,
) -> Result<(), CoreError> {
    if base.form() != inc.form()
        || base.states() != inc.states()
        || base.var_indexes() != inc.var_indexes()
    {
        return Err(bin_err(format!(
            "delta merge increment shape does not match stored accumulator {site}/{}",
            class.as_str()
        )));
    }
    Ok(())
}

/// One change within a [`CatalogDelta`].
#[derive(Debug, Clone)]
pub enum DeltaEntry {
    /// Replace (or add) the model for a site/class pair.
    PutModel(SiteId, QueryClass, CostModel),
    /// Replace (or add) the full accumulator for a site/class pair.
    PutAccumulator(SiteId, QueryClass, ModelAccumulator),
    /// Replace (or add) a site's probe estimator.
    PutProbeEstimator(SiteId, ProbeCostEstimator),
    /// Fold an accumulator increment (the statistics of just the new
    /// observations) into the stored accumulator via
    /// [`ModelAccumulator::merge`].
    MergeAccumulator(SiteId, QueryClass, ModelAccumulator),
}

/// A set of changes that advances a snapshot from `base_version` to
/// `version`. Removals are not representable: the catalog only ever grows
/// or replaces entries, and [`CatalogDelta::between`] rejects a shrinking
/// pair outright.
#[derive(Debug, Clone, Default)]
pub struct CatalogDelta {
    /// The snapshot version this delta applies on top of.
    pub base_version: u64,
    /// The snapshot version after applying this delta.
    pub version: u64,
    /// The changes, in application order.
    pub entries: Vec<DeltaEntry>,
}

impl CatalogDelta {
    /// An empty delta advancing `base_version` → `version`.
    pub fn new(base_version: u64, version: u64) -> CatalogDelta {
        CatalogDelta {
            base_version,
            version,
            entries: Vec::new(),
        }
    }

    /// Records a model replacement.
    pub fn put_model(&mut self, site: SiteId, class: QueryClass, model: CostModel) {
        self.entries.push(DeltaEntry::PutModel(site, class, model));
    }

    /// Records a full accumulator replacement.
    pub fn put_accumulator(&mut self, site: SiteId, class: QueryClass, acc: ModelAccumulator) {
        self.entries
            .push(DeltaEntry::PutAccumulator(site, class, acc));
    }

    /// Records a probe-estimator replacement.
    pub fn put_probe_estimator(&mut self, site: SiteId, est: ProbeCostEstimator) {
        self.entries.push(DeltaEntry::PutProbeEstimator(site, est));
    }

    /// Records an accumulator increment to merge on apply.
    pub fn merge_accumulator(&mut self, site: SiteId, class: QueryClass, inc: ModelAccumulator) {
        self.entries
            .push(DeltaEntry::MergeAccumulator(site, class, inc));
    }

    /// Number of recorded changes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Diffs two snapshots into a delta: every entry of `next` whose
    /// encoded bytes differ from (or are absent in) `base` becomes a
    /// `Put`. Entries present in `base` but missing from `next` are an
    /// error — the delta encoding has no removals.
    pub fn between(
        base: &CatalogSnapshot,
        next: &CatalogSnapshot,
    ) -> Result<CatalogDelta, CoreError> {
        if next.version <= base.version {
            return Err(bin_err(format!(
                "cannot delta from version {} back to {}",
                base.version, next.version
            )));
        }
        let base_entries: BTreeMap<EntryKey, Vec<u8>> =
            enumerate_entries(&base.catalog).into_iter().collect();
        let mut delta = CatalogDelta::new(base.version, next.version);
        let mut next_keys: Vec<EntryKey> = Vec::new();
        for (key, body) in enumerate_entries(&next.catalog) {
            next_keys.push(key.clone());
            if base_entries.get(&key).map(Vec::as_slice) == Some(body.as_slice()) {
                continue;
            }
            let (kind, site, class) = (&key.0, SiteId(key.1.clone()), key.2);
            match *kind {
                ENTRY_MODEL => {
                    let class = class_from_code(class)?;
                    let model = next
                        .catalog
                        .model(&site, class)
                        .expect("enumerated")
                        .clone();
                    delta.put_model(site, class, model);
                }
                ENTRY_GRAM => {
                    let class = class_from_code(class)?;
                    let acc = next
                        .catalog
                        .accumulator(&site, class)
                        .expect("enumerated")
                        .clone();
                    delta.put_accumulator(site, class, acc);
                }
                ENTRY_PROBE => {
                    let est = next
                        .catalog
                        .probe_estimator(&site)
                        .expect("enumerated")
                        .clone();
                    delta.put_probe_estimator(site, est);
                }
                _ => unreachable!("enumerate_entries emits known kinds"),
            }
        }
        for key in base_entries.keys() {
            if !next_keys.contains(key) {
                return Err(bin_err(format!(
                    "entry {} disappeared between snapshots; deltas cannot encode removals",
                    key.1
                )));
            }
        }
        Ok(delta)
    }
}

/// Sort/diff key of a catalog entry: `(kind, site name, class code)`.
type EntryKey = (u8, String, u8);

/// Enumerates a catalog's entries in the canonical (site, class) order —
/// the same order [`GlobalCatalog::export`] writes — as `(key, encoded
/// body)` pairs. Accumulators without a model, like in the text format,
/// are not enumerated.
fn enumerate_entries(catalog: &GlobalCatalog) -> Vec<(EntryKey, Vec<u8>)> {
    let mut out = Vec::new();
    for site in catalog.sites() {
        for class in catalog.classes_for(&site) {
            let model = catalog.model(&site, class).expect("class listed for site");
            out.push((
                (ENTRY_MODEL, site.0.clone(), class_code(class)),
                encode_model(model),
            ));
            if let Some(acc) = catalog.accumulator(&site, class) {
                out.push((
                    (ENTRY_GRAM, site.0.clone(), class_code(class)),
                    encode_accumulator(acc),
                ));
            }
        }
        if let Some(est) = catalog.probe_estimator(&site) {
            out.push(((ENTRY_PROBE, site.0.clone(), NO_CLASS), encode_probe(est)));
        }
    }
    out
}

fn form_code(form: ModelForm) -> u8 {
    match form {
        ModelForm::Coincident => 0,
        ModelForm::Parallel => 1,
        ModelForm::Concurrent => 2,
        ModelForm::General => 3,
    }
}

fn form_from_code(code: u8) -> Result<ModelForm, CoreError> {
    match code {
        0 => Ok(ModelForm::Coincident),
        1 => Ok(ModelForm::Parallel),
        2 => Ok(ModelForm::Concurrent),
        3 => Ok(ModelForm::General),
        other => Err(bin_err(format!("unknown model form code {other}"))),
    }
}

fn class_code(class: QueryClass) -> u8 {
    QueryClass::all()
        .iter()
        .position(|&c| c == class)
        .expect("class is in the canonical list") as u8
}

fn class_from_code(code: u8) -> Result<QueryClass, CoreError> {
    QueryClass::all()
        .get(code as usize)
        .copied()
        .ok_or_else(|| bin_err(format!("unknown query class code {code}")))
}

// ---- primitive writers ----------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    mdbs_stats::suffstats::push_f64_compact(out, v);
}

// Site and variable names are short (u16 lengths), as are state/variable
// counts — the compact format spends its bytes on the floats.
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

fn put_f64s(out: &mut Vec<u8>, vs: &[f64]) {
    put_u16(out, vs.len() as u16);
    for &v in vs {
        put_f64(out, v);
    }
}

fn put_vars(out: &mut Vec<u8>, indexes: &[usize], names: &[String]) {
    put_u16(out, indexes.len() as u16);
    for (i, n) in indexes.iter().zip(names) {
        put_u16(out, *i as u16);
        put_str(out, n);
    }
}

/// Bounds-checked little-endian reader for the binary catalog format.
struct BinReader<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> BinReader<'a> {
    fn new(bytes: &'a [u8]) -> BinReader<'a> {
        BinReader { bytes, off: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CoreError> {
        let end = self
            .off
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| bin_err("truncated file"))?;
        let s = &self.bytes[self.off..end];
        self.off = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CoreError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, CoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, CoreError> {
        let (v, used) = mdbs_stats::suffstats::read_f64_compact(&self.bytes[self.off..])
            .ok_or_else(|| bin_err("bad compact float"))?;
        self.off += used;
        Ok(v)
    }

    fn str(&mut self) -> Result<String, CoreError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bin_err("non-UTF-8 string"))
    }

    fn f64s(&mut self) -> Result<Vec<f64>, CoreError> {
        let len = self.u16()? as usize;
        // Each compact float costs at least one byte.
        if len > self.remaining() {
            return Err(bin_err("truncated file"));
        }
        (0..len).map(|_| self.f64()).collect()
    }

    fn vars(&mut self) -> Result<(Vec<usize>, Vec<String>), CoreError> {
        let len = self.u16()? as usize;
        let mut indexes = Vec::with_capacity(len.min(1024));
        let mut names = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            indexes.push(self.u16()? as usize);
            names.push(self.str()?);
        }
        Ok((indexes, names))
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.off
    }

    fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn finish(&self) -> Result<(), CoreError> {
        if !self.is_empty() {
            return Err(bin_err("trailing bytes"));
        }
        Ok(())
    }
}

// ---- entry body codecs ----------------------------------------------------

fn encode_model(m: &CostModel) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(form_code(m.form));
    put_f64s(&mut out, m.states.edges());
    put_vars(&mut out, &m.var_indexes, &m.var_names);
    put_f64(&mut out, m.fit.r_squared);
    put_f64(&mut out, m.fit.adj_r_squared);
    put_f64(&mut out, m.fit.see);
    put_f64(&mut out, m.fit.f_statistic);
    put_f64(&mut out, m.fit.f_p_value);
    put_u32(&mut out, m.fit.n as u32);
    put_u32(&mut out, m.fit.k as u32);
    put_u16(&mut out, m.coefficients.len() as u16);
    for row in &m.coefficients {
        put_f64s(&mut out, row);
    }
    out
}

fn decode_model(bytes: &[u8]) -> Result<CostModel, CoreError> {
    let mut r = BinReader::new(bytes);
    let form = form_from_code(r.u8()?)?;
    let states = StateSet::from_edges(r.f64s()?)?;
    let (var_indexes, var_names) = r.vars()?;
    let fit = FitStats {
        r_squared: r.f64()?,
        adj_r_squared: r.f64()?,
        see: r.f64()?,
        f_statistic: r.f64()?,
        f_p_value: r.f64()?,
        n: r.u32()? as usize,
        k: r.u32()? as usize,
    };
    let rows = r.u16()? as usize;
    if rows != states.len() {
        return Err(bin_err(format!(
            "{rows} coefficient rows for {} states",
            states.len()
        )));
    }
    let mut coefficients = Vec::with_capacity(rows);
    for _ in 0..rows {
        let row = r.f64s()?;
        if row.len() != var_indexes.len() + 1 {
            return Err(bin_err("coefficient row width does not match vars"));
        }
        coefficients.push(row);
    }
    r.finish()?;
    Ok(CostModel {
        form,
        states,
        var_indexes,
        var_names,
        coefficients,
        fit,
    })
}

/// Accumulator shape layout flags: `SHAPE_SELF` carries its own
/// form/states/vars (context-free — the layout deltas and diffing use);
/// `SHAPE_FROM_MODEL` inherits all three from the model entry of the same
/// (site, class) — the text format writes them twice per pair, the binary
/// snapshot needn't.
const SHAPE_SELF: u8 = 0;
const SHAPE_FROM_MODEL: u8 = 1;

/// Context-free accumulator encoding (`SHAPE_SELF`). Used for delta
/// entries and for diffing, where body bytes must identify the value
/// without reference to a surrounding snapshot.
fn encode_accumulator(acc: &ModelAccumulator) -> Vec<u8> {
    let mut out = vec![SHAPE_SELF];
    out.push(form_code(acc.form()));
    put_f64s(&mut out, acc.states().edges());
    put_vars(&mut out, acc.var_indexes(), acc.var_names());
    put_blocks(&mut out, acc);
    out
}

/// Snapshot-frame accumulator encoding: when the accumulator's shape is
/// bit-exactly the model's (the invariant every producer maintains), emit
/// `SHAPE_FROM_MODEL` and only the Gram blocks; otherwise fall back to
/// the context-free layout.
fn encode_accumulator_with(model: &CostModel, acc: &ModelAccumulator) -> Vec<u8> {
    let same_states = acc.states().edges().len() == model.states.edges().len()
        && acc
            .states()
            .edges()
            .iter()
            .zip(model.states.edges())
            .all(|(a, b)| a.to_bits() == b.to_bits());
    if acc.form() == model.form
        && same_states
        && acc.var_indexes() == model.var_indexes.as_slice()
        && acc.var_names() == model.var_names.as_slice()
    {
        let mut out = vec![SHAPE_FROM_MODEL];
        put_blocks(&mut out, acc);
        return out;
    }
    encode_accumulator(acc)
}

fn put_blocks(out: &mut Vec<u8>, acc: &ModelAccumulator) {
    put_u16(out, acc.blocks().len() as u16);
    for block in acc.blocks() {
        let bytes = block.to_bytes();
        put_u32(out, bytes.len() as u32);
        out.extend_from_slice(&bytes);
    }
}

/// Decodes either accumulator layout. `model` provides the shape for
/// `SHAPE_FROM_MODEL` bodies; `None` (the delta path) rejects them.
fn decode_accumulator(
    bytes: &[u8],
    model: Option<&CostModel>,
) -> Result<ModelAccumulator, CoreError> {
    let mut r = BinReader::new(bytes);
    let (form, states, var_indexes, var_names) = match r.u8()? {
        SHAPE_SELF => {
            let form = form_from_code(r.u8()?)?;
            let states = StateSet::from_edges(r.f64s()?)?;
            let (var_indexes, var_names) = r.vars()?;
            (form, states, var_indexes, var_names)
        }
        SHAPE_FROM_MODEL => {
            let m = model.ok_or_else(|| {
                bin_err("accumulator inherits its shape but no model entry precedes it")
            })?;
            (
                m.form,
                m.states.clone(),
                m.var_indexes.clone(),
                m.var_names.clone(),
            )
        }
        other => return Err(bin_err(format!("unknown accumulator shape flag {other}"))),
    };
    let blocks_len = r.u16()? as usize;
    let mut blocks = Vec::with_capacity(blocks_len.min(1024));
    for _ in 0..blocks_len {
        let len = r.u32()? as usize;
        let block = mdbs_stats::GramAccumulator::from_bytes(r.take(len)?)?;
        blocks.push(block);
    }
    r.finish()?;
    ModelAccumulator::from_parts(form, states, var_indexes, var_names, blocks)
}

fn encode_probe(est: &ProbeCostEstimator) -> Vec<u8> {
    let mut out = Vec::new();
    put_vars(&mut out, &est.selected, &est.names);
    put_f64s(&mut out, &est.coefficients);
    put_f64(&mut out, est.r_squared);
    put_f64(&mut out, est.see);
    out
}

fn decode_probe(bytes: &[u8]) -> Result<ProbeCostEstimator, CoreError> {
    let mut r = BinReader::new(bytes);
    let (selected, names) = r.vars()?;
    let coefficients = r.f64s()?;
    let r_squared = r.f64()?;
    let see = r.f64()?;
    r.finish()?;
    if coefficients.len() != selected.len() + 1 {
        return Err(bin_err("probe coefficient width does not match params"));
    }
    Ok(ProbeCostEstimator {
        selected,
        names,
        coefficients,
        r_squared,
        see,
    })
}

// ---- frame codecs ---------------------------------------------------------

fn encode_entry(out: &mut Vec<u8>, kind: u8, site: &str, class: u8, body: &[u8]) {
    out.push(kind);
    put_str(out, site);
    out.push(class);
    put_u32(out, body.len() as u32);
    out.extend_from_slice(body);
}

fn encode_snapshot_frame(snap: &CatalogSnapshot) -> Vec<u8> {
    // Mirrors [`enumerate_entries`]' order, but gram entries use the
    // model-inherited shape layout — within a snapshot frame the model
    // entry of the same (site, class) always precedes its accumulator.
    let catalog = &snap.catalog;
    let mut entries: Vec<(EntryKey, Vec<u8>)> = Vec::new();
    for site in catalog.sites() {
        for class in catalog.classes_for(&site) {
            let model = catalog.model(&site, class).expect("class listed for site");
            entries.push((
                (ENTRY_MODEL, site.0.clone(), class_code(class)),
                encode_model(model),
            ));
            if let Some(acc) = catalog.accumulator(&site, class) {
                entries.push((
                    (ENTRY_GRAM, site.0.clone(), class_code(class)),
                    encode_accumulator_with(model, acc),
                ));
            }
        }
        if let Some(est) = catalog.probe_estimator(&site) {
            entries.push(((ENTRY_PROBE, site.0.clone(), NO_CLASS), encode_probe(est)));
        }
    }
    let mut payload = Vec::new();
    put_u64(&mut payload, snap.version);
    put_u32(&mut payload, entries.len() as u32);
    for ((kind, site, class), body) in &entries {
        encode_entry(&mut payload, *kind, site, *class, body);
    }
    payload
}

fn decode_snapshot_frame(payload: &[u8]) -> Result<CatalogSnapshot, CoreError> {
    let mut r = BinReader::new(payload);
    let version = r.u64()?;
    let count = r.u32()? as usize;
    let mut catalog = GlobalCatalog::new();
    for _ in 0..count {
        let kind = r.u8()?;
        let site = SiteId(r.str()?);
        let class = r.u8()?;
        let len = r.u32()? as usize;
        let body = r.take(len)?;
        match kind {
            ENTRY_MODEL => {
                catalog.insert_model(site, class_from_code(class)?, decode_model(body)?);
            }
            ENTRY_GRAM => {
                let class = class_from_code(class)?;
                let acc = decode_accumulator(body, catalog.model(&site, class))?;
                catalog.insert_accumulator(site, class, acc);
            }
            ENTRY_PROBE => {
                if class != NO_CLASS {
                    return Err(bin_err("probe entry carries a class byte"));
                }
                catalog.insert_probe_estimator(site, decode_probe(body)?);
            }
            other => return Err(bin_err(format!("unknown entry kind {other}"))),
        }
    }
    r.finish()?;
    Ok(CatalogSnapshot { version, catalog })
}

fn encode_delta_frame(delta: &CatalogDelta) -> Vec<u8> {
    let mut payload = Vec::new();
    put_u64(&mut payload, delta.base_version);
    put_u64(&mut payload, delta.version);
    put_u32(&mut payload, delta.entries.len() as u32);
    for entry in &delta.entries {
        match entry {
            DeltaEntry::PutModel(site, class, model) => {
                encode_entry(
                    &mut payload,
                    OP_PUT_MODEL,
                    &site.0,
                    class_code(*class),
                    &encode_model(model),
                );
            }
            DeltaEntry::PutAccumulator(site, class, acc) => {
                encode_entry(
                    &mut payload,
                    OP_PUT_GRAM,
                    &site.0,
                    class_code(*class),
                    &encode_accumulator(acc),
                );
            }
            DeltaEntry::PutProbeEstimator(site, est) => {
                encode_entry(
                    &mut payload,
                    OP_PUT_PROBE,
                    &site.0,
                    NO_CLASS,
                    &encode_probe(est),
                );
            }
            DeltaEntry::MergeAccumulator(site, class, inc) => {
                encode_entry(
                    &mut payload,
                    OP_MERGE_GRAM,
                    &site.0,
                    class_code(*class),
                    &encode_accumulator(inc),
                );
            }
        }
    }
    payload
}

fn decode_delta_frame(payload: &[u8]) -> Result<CatalogDelta, CoreError> {
    let mut r = BinReader::new(payload);
    let base_version = r.u64()?;
    let version = r.u64()?;
    let count = r.u32()? as usize;
    let mut delta = CatalogDelta::new(base_version, version);
    for _ in 0..count {
        let op = r.u8()?;
        let site = SiteId(r.str()?);
        let class = r.u8()?;
        let len = r.u32()? as usize;
        let body = r.take(len)?;
        match op {
            OP_PUT_MODEL => delta.put_model(site, class_from_code(class)?, decode_model(body)?),
            OP_PUT_GRAM => delta.put_accumulator(
                site,
                class_from_code(class)?,
                decode_accumulator(body, None)?,
            ),
            OP_PUT_PROBE => {
                if class != NO_CLASS {
                    return Err(bin_err("probe op carries a class byte"));
                }
                delta.put_probe_estimator(site, decode_probe(body)?);
            }
            OP_MERGE_GRAM => delta.merge_accumulator(
                site,
                class_from_code(class)?,
                decode_accumulator(body, None)?,
            ),
            other => return Err(bin_err(format!("unknown delta op {other}"))),
        }
    }
    r.finish()?;
    Ok(delta)
}

fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 9);
    out.push(kind);
    put_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    out
}

/// Serializes a snapshot to complete binary-file bytes: magic, container
/// version, one snapshot frame. A catalog restored by replaying a base
/// snapshot plus its delta chain serializes to exactly these bytes —
/// that is the round-trip identity ci.sh gates on.
pub fn snapshot_to_bytes(snap: &CatalogSnapshot) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&BINARY_MAGIC);
    out.extend_from_slice(&BINARY_FORMAT_VERSION.to_le_bytes());
    let payload = encode_snapshot_frame(snap);
    out.extend_from_slice(&encode_frame(FRAME_SNAPSHOT, &payload));
    out
}

/// Serializes a delta to an appendable binary frame (no file header).
pub fn delta_to_frame_bytes(delta: &CatalogDelta) -> Vec<u8> {
    encode_frame(FRAME_DELTA, &encode_delta_frame(delta))
}

/// Parses complete binary-file bytes: checks the magic and container
/// version, decodes the leading snapshot frame, then replays every delta
/// frame in order. Returns the final snapshot plus the number of deltas
/// applied and the total delta entries replayed (for telemetry).
pub fn snapshot_from_bytes(bytes: &[u8]) -> Result<(CatalogSnapshot, u64, u64), CoreError> {
    let mut r = BinReader::new(bytes);
    let magic = r.take(4)?;
    if magic != BINARY_MAGIC {
        return Err(bin_err("bad magic (not a binary catalog)"));
    }
    let container = r.u32()?;
    if container != BINARY_FORMAT_VERSION {
        return Err(bin_err(format!(
            "unsupported binary format version {container} (supported: {BINARY_FORMAT_VERSION})"
        )));
    }
    let mut snap: Option<CatalogSnapshot> = None;
    let mut deltas_applied = 0u64;
    let mut delta_entries = 0u64;
    while !r.is_empty() {
        let kind = r.u8()?;
        let len = r.u64()? as usize;
        let payload = r.take(len)?;
        match (kind, &mut snap) {
            (FRAME_SNAPSHOT, None) => {
                snap = Some(decode_snapshot_frame(payload)?);
            }
            (FRAME_SNAPSHOT, Some(_)) => {
                return Err(bin_err("second snapshot frame in one file"));
            }
            (FRAME_DELTA, Some(s)) => {
                let delta = decode_delta_frame(payload)?;
                delta_entries += delta.len() as u64;
                deltas_applied += 1;
                s.apply_delta(&delta)?;
            }
            (FRAME_DELTA, None) => {
                return Err(bin_err("delta frame before any snapshot frame"));
            }
            (other, _) => return Err(bin_err(format!("unknown frame kind {other}"))),
        }
    }
    let snap = snap.ok_or_else(|| bin_err("no snapshot frame in file"))?;
    Ok((snap, deltas_applied, delta_entries))
}

// ---- the store abstraction ------------------------------------------------

/// A load/store error: either an I/O failure on the backing medium
/// (carrying the [`std::io::Error`], so callers keep their exit-code
/// taxonomy) or corrupt/inconsistent catalog content.
#[derive(Debug)]
pub enum StoreError {
    /// The backing file could not be read or written.
    Io {
        /// What the store was doing (e.g. `read catalog /path`).
        context: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The content was read but does not decode to a valid snapshot.
    Corrupt(CoreError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { context, source } => write!(f, "{context}: {source}"),
            StoreError::Corrupt(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Corrupt(e) => Some(e),
        }
    }
}

impl From<CoreError> for StoreError {
    fn from(e: CoreError) -> StoreError {
        StoreError::Corrupt(e)
    }
}

/// The persistence abstraction every catalog load/store call site goes
/// through: load a versioned snapshot, store one whole, or append a delta
/// frame in O(delta) bytes.
pub trait CatalogStore {
    /// Loads and fully materializes the snapshot (replaying any delta
    /// chain). Emits `catalog.load_bytes` / `catalog.load_entries` /
    /// `catalog.delta.applied` / `catalog.delta.entries` counters and the
    /// `catalog.format` gauge.
    fn load(&self, tel: &mut Telemetry) -> Result<CatalogSnapshot, StoreError>;

    /// Writes the snapshot whole, replacing any previous content. Emits
    /// `catalog.store_bytes` / `catalog.store_entries` and
    /// `catalog.format`.
    fn store(&self, snap: &CatalogSnapshot, tel: &mut Telemetry) -> Result<(), StoreError>;

    /// Appends a delta frame without rewriting existing content. Only the
    /// binary format supports this; the write cost is proportional to the
    /// delta, not the catalog. Emits `catalog.delta.appended` and
    /// `catalog.store_bytes`.
    fn append_delta(&self, delta: &CatalogDelta, tel: &mut Telemetry) -> Result<(), StoreError>;

    /// The format [`CatalogStore::store`] would write.
    fn format(&self) -> CatalogFormat;
}

/// A [`CatalogStore`] over one file path. Loading sniffs the actual
/// content (binary magic vs. text header), so a store configured for one
/// format still reads the other; writing uses the configured format, or —
/// when constructed with [`FileCatalogStore::sniffing`] — whatever format
/// the file already holds (text for fresh files, keeping the historical
/// CLI behavior byte-compatible).
#[derive(Debug, Clone)]
pub struct FileCatalogStore {
    path: PathBuf,
    format: Option<CatalogFormat>,
}

impl FileCatalogStore {
    /// A store that writes `format`.
    pub fn new(path: impl Into<PathBuf>, format: CatalogFormat) -> FileCatalogStore {
        FileCatalogStore {
            path: path.into(),
            format: Some(format),
        }
    }

    /// A store that writes whatever format the file already holds, or
    /// text when the file does not exist yet.
    pub fn sniffing(path: impl Into<PathBuf>) -> FileCatalogStore {
        FileCatalogStore {
            path: path.into(),
            format: None,
        }
    }

    /// The backing path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Like [`CatalogStore::load`], but a missing file is an empty
    /// unversioned snapshot instead of an error — the "first run"
    /// convention of `derive`.
    pub fn load_or_empty(&self, tel: &mut Telemetry) -> Result<CatalogSnapshot, StoreError> {
        match self.load(tel) {
            Ok(snap) => Ok(snap),
            Err(StoreError::Io { ref source, .. })
                if source.kind() == std::io::ErrorKind::NotFound =>
            {
                Ok(CatalogSnapshot::new())
            }
            Err(e) => Err(e),
        }
    }

    fn io_err(&self, what: &str, source: std::io::Error) -> StoreError {
        StoreError::Io {
            context: format!("cannot {what} `{}`", self.path.display()),
            source,
        }
    }

    /// The format `store` will write: configured > sniffed > text.
    fn write_format(&self) -> CatalogFormat {
        if let Some(f) = self.format {
            return f;
        }
        match std::fs::read(&self.path) {
            Ok(bytes) if bytes.starts_with(&BINARY_MAGIC) => CatalogFormat::Binary,
            _ => CatalogFormat::Text,
        }
    }
}

fn format_gauge(tel: &mut Telemetry, format: CatalogFormat) {
    let code = match format {
        CatalogFormat::Text => 0.0,
        CatalogFormat::Binary => 1.0,
    };
    tel.gauge("catalog.format", code);
}

impl CatalogStore for FileCatalogStore {
    fn load(&self, tel: &mut Telemetry) -> Result<CatalogSnapshot, StoreError> {
        let bytes = std::fs::read(&self.path).map_err(|e| self.io_err("read", e))?;
        let (snap, format, deltas, delta_entries) = if bytes.starts_with(&BINARY_MAGIC) {
            let (snap, deltas, entries) = snapshot_from_bytes(&bytes)?;
            (snap, CatalogFormat::Binary, deltas, entries)
        } else {
            let text = String::from_utf8(bytes.clone())
                .map_err(|_| StoreError::Corrupt(bin_err("neither binary magic nor UTF-8 text")))?;
            let (catalog, version) = GlobalCatalog::import_versioned(&text)?;
            (
                CatalogSnapshot { version, catalog },
                CatalogFormat::Text,
                0,
                0,
            )
        };
        tel.inc("catalog.load_bytes", bytes.len() as u64);
        tel.inc(
            "catalog.load_entries",
            enumerate_entries(&snap.catalog).len() as u64,
        );
        if deltas > 0 {
            tel.inc("catalog.delta.applied", deltas);
            tel.inc("catalog.delta.entries", delta_entries);
        }
        format_gauge(tel, format);
        Ok(snap)
    }

    fn store(&self, snap: &CatalogSnapshot, tel: &mut Telemetry) -> Result<(), StoreError> {
        let format = self.write_format();
        let bytes = match format {
            CatalogFormat::Binary => snapshot_to_bytes(snap),
            CatalogFormat::Text => snap.catalog.export_versioned(snap.version).into_bytes(),
        };
        std::fs::write(&self.path, &bytes).map_err(|e| self.io_err("write", e))?;
        tel.inc("catalog.store_bytes", bytes.len() as u64);
        tel.inc(
            "catalog.store_entries",
            enumerate_entries(&snap.catalog).len() as u64,
        );
        format_gauge(tel, format);
        Ok(())
    }

    fn append_delta(&self, delta: &CatalogDelta, tel: &mut Telemetry) -> Result<(), StoreError> {
        // Only the magic is read back, so append cost stays O(delta)
        // no matter how large the catalog file has grown.
        let mut head = [0u8; 4];
        std::fs::File::open(&self.path)
            .and_then(|mut f| std::io::Read::read_exact(&mut f, &mut head))
            .map_err(|e| self.io_err("read", e))?;
        if head != BINARY_MAGIC {
            return Err(StoreError::Corrupt(bin_err(
                "delta append requires a binary catalog file (archive it first)",
            )));
        }
        let frame = delta_to_frame_bytes(delta);
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| self.io_err("append to", e))?;
        file.write_all(&frame)
            .map_err(|e| self.io_err("append to", e))?;
        tel.inc("catalog.delta.appended", 1);
        tel.inc("catalog.store_bytes", frame.len() as u64);
        Ok(())
    }

    fn format(&self) -> CatalogFormat {
        self.write_format()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::fit_cost_model;
    use crate::observation::Observation;

    fn sample_model(m: usize) -> CostModel {
        let states = if m == 1 {
            StateSet::single()
        } else {
            StateSet::uniform(0.0, m as f64, m).unwrap()
        };
        let mut obs = Vec::new();
        for s in 0..m {
            for i in 0..12 {
                // Non-terminating decimals, like real measured costs — the
                // text format spends ~17 digits per float on these.
                let x = (i as f64 + 1.0) * 3.0337;
                obs.push(Observation {
                    x: vec![x, (i % 5) as f64 * 1.3177 + 0.503, (i % 4) as f64 * 2.00071],
                    cost: (s + 1) as f64 * (1.5 + 2.4991 * x) + (i % 3) as f64 * 0.010013,
                    probe_cost: s as f64 + 0.5,
                });
            }
        }
        fit_cost_model(
            if m == 1 {
                ModelForm::Coincident
            } else {
                ModelForm::General
            },
            states,
            vec![0, 1, 2],
            vec!["N_O".into(), "S_O".into(), "N_R".into()],
            &obs,
        )
        .unwrap()
    }

    fn sample_obs(m: usize, n: usize, salt: u64) -> Vec<Observation> {
        (0..n)
            .map(|i| {
                let x = (i as f64 + salt as f64 * 0.2501) * 3.0337;
                Observation {
                    x: vec![x, (i % 5) as f64 * 1.3177 + 0.503, (i % 4) as f64 * 2.00071],
                    cost: 1.5 + 2.4991 * x + (i % 3) as f64 * 0.010013,
                    probe_cost: (i % m) as f64 + 0.5,
                }
            })
            .collect()
    }

    fn sample_snapshot(version: u64) -> CatalogSnapshot {
        let mut catalog = GlobalCatalog::new();
        let model = sample_model(3);
        let acc = ModelAccumulator::from_observations(&model, &sample_obs(3, 36, 0));
        catalog.insert_model("site-a".into(), QueryClass::UnaryNoIndex, model);
        catalog.insert_accumulator("site-a".into(), QueryClass::UnaryNoIndex, acc);
        let model2 = sample_model(2);
        let acc2 = ModelAccumulator::from_observations(&model2, &sample_obs(2, 24, 3));
        catalog.insert_model("site-a".into(), QueryClass::JoinNoIndex, model2);
        catalog.insert_accumulator("site-a".into(), QueryClass::JoinNoIndex, acc2);
        catalog.insert_model(
            "site-b".into(),
            QueryClass::UnaryClusteredIndex,
            sample_model(1),
        );
        catalog.insert_probe_estimator(
            "site-b".into(),
            ProbeCostEstimator {
                selected: vec![0, 2],
                names: vec!["cpu".into(), "io".into()],
                coefficients: vec![0.5, 1.25, -0.75],
                r_squared: 0.9,
                see: 0.1,
            },
        );
        CatalogSnapshot::at_version(catalog, version)
    }

    #[test]
    fn binary_roundtrip_bit_exact() {
        let snap = sample_snapshot(7);
        let bytes = snapshot_to_bytes(&snap);
        let (back, deltas, _) = snapshot_from_bytes(&bytes).unwrap();
        assert_eq!(deltas, 0);
        assert_eq!(back.version, 7);
        // Text export of both catalogs is byte-identical (the text format
        // is already bit-exact, so this proves the binary one is too).
        assert_eq!(back.catalog.export(), snap.catalog.export());
        // And re-encoding is byte-identical.
        assert_eq!(snapshot_to_bytes(&back), bytes);
    }

    #[test]
    fn binary_rejects_corruption() {
        let snap = sample_snapshot(1);
        let bytes = snapshot_to_bytes(&snap);
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(snapshot_from_bytes(&bad).is_err());
        // Wrong container version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(snapshot_from_bytes(&bad).is_err());
        // Truncations at every prefix length fail cleanly (never panic).
        for cut in 0..bytes.len() {
            assert!(snapshot_from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
        // Trailing garbage.
        let mut bad = bytes;
        bad.push(0xEE);
        assert!(snapshot_from_bytes(&bad).is_err());
    }

    #[test]
    fn delta_between_and_apply() {
        let base = sample_snapshot(3);
        let mut next = base.clone();
        next.version = 5;
        next.catalog
            .insert_model("site-c".into(), QueryClass::JoinIndexed, sample_model(2));
        let delta = CatalogDelta::between(&base, &next).unwrap();
        assert_eq!(delta.len(), 1, "only the new entry is carried");
        let mut replayed = base.clone();
        replayed.apply_delta(&delta).unwrap();
        assert_eq!(replayed.version, 5);
        assert_eq!(
            snapshot_to_bytes(&replayed),
            snapshot_to_bytes(&next),
            "replay lands on identical bytes"
        );
    }

    #[test]
    fn delta_rejects_mismatched_base() {
        let base = sample_snapshot(3);
        let mut delta = CatalogDelta::new(9, 10);
        delta.put_model("site-z".into(), QueryClass::JoinIndexed, sample_model(1));
        let mut snap = base.clone();
        let err = snap.apply_delta(&delta).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("base snapshot version 9"), "{msg}");
        assert_eq!(snap.version, 3, "failed apply leaves the snapshot intact");
    }

    #[test]
    fn delta_rejects_removals() {
        let base = sample_snapshot(3);
        let mut next = CatalogSnapshot::at_version(GlobalCatalog::new(), 4);
        next.catalog
            .insert_model("site-a".into(), QueryClass::UnaryNoIndex, sample_model(3));
        assert!(CatalogDelta::between(&base, &next).is_err());
    }

    #[test]
    fn merge_delta_replay_is_bit_exact() {
        // Producer: advance the accumulator through apply_delta (the
        // sanctioned path), appending increments.
        let mut producer = sample_snapshot(3);
        let increment = {
            let acc = producer
                .catalog
                .accumulator(&"site-a".into(), QueryClass::UnaryNoIndex)
                .unwrap();
            acc.increment_from(&sample_obs(3, 9, 17))
        };
        let mut delta = CatalogDelta::new(3, 4);
        delta.merge_accumulator("site-a".into(), QueryClass::UnaryNoIndex, increment);
        producer.apply_delta(&delta).unwrap();

        // Restore: replay base + delta from encoded bytes.
        let mut restored = sample_snapshot(3);
        let frame = delta_to_frame_bytes(&delta);
        let mut r = BinReader::new(&frame);
        assert_eq!(r.u8().unwrap(), FRAME_DELTA);
        let len = r.u64().unwrap() as usize;
        let decoded = decode_delta_frame(r.take(len).unwrap()).unwrap();
        restored.apply_delta(&decoded).unwrap();
        assert_eq!(snapshot_to_bytes(&restored), snapshot_to_bytes(&producer));
    }

    #[test]
    fn merge_into_missing_accumulator_is_an_error() {
        let mut snap = sample_snapshot(3);
        let inc = ModelAccumulator::from_observations(&sample_model(2), &[]);
        let mut delta = CatalogDelta::new(3, 4);
        delta.merge_accumulator("site-b".into(), QueryClass::UnaryClusteredIndex, inc);
        let msg = format!("{}", snap.apply_delta(&delta).unwrap_err());
        assert!(msg.contains("missing accumulator"), "{msg}");
    }

    #[test]
    fn file_store_roundtrip_both_formats() {
        let dir = std::env::temp_dir().join("mdbs-store-test-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = sample_snapshot(11);
        let mut tel = Telemetry::enabled();
        for format in [CatalogFormat::Text, CatalogFormat::Binary] {
            let path = dir.join(format!("cat.{}", format.as_str()));
            let store = FileCatalogStore::new(&path, format);
            store.store(&snap, &mut tel).unwrap();
            let back = store.load(&mut tel).unwrap();
            assert_eq!(back.version, 11, "{format:?}");
            assert_eq!(back.catalog.export(), snap.catalog.export(), "{format:?}");
        }
        // Binary is meaningfully smaller than text even at this tiny
        // scale (the bench asserts the full ≥3× criterion on a
        // realistic 2-vendor × 3-class catalog).
        let text_len = std::fs::metadata(dir.join("cat.text")).unwrap().len();
        let bin_len = std::fs::metadata(dir.join("cat.binary")).unwrap().len();
        assert!(
            bin_len * 2 <= text_len,
            "binary {bin_len} should be ≥2× smaller than text {text_len}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_store_append_delta_and_reload() {
        let dir = std::env::temp_dir().join("mdbs-store-test-append");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cat.mdbc");
        let store = FileCatalogStore::new(&path, CatalogFormat::Binary);
        let mut tel = Telemetry::enabled();
        let mut snap = sample_snapshot(3);
        store.store(&snap, &mut tel).unwrap();
        let mut delta = CatalogDelta::new(3, 4);
        delta.put_model("site-d".into(), QueryClass::JoinNoIndex, sample_model(2));
        snap.apply_delta(&delta).unwrap();
        store.append_delta(&delta, &mut tel).unwrap();
        let back = store.load(&mut tel).unwrap();
        assert_eq!(back.version, 4);
        assert_eq!(snapshot_to_bytes(&back), snapshot_to_bytes(&snap));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_delta_to_text_file_is_an_error() {
        let dir = std::env::temp_dir().join("mdbs-store-test-append-text");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cat.txt");
        let store = FileCatalogStore::new(&path, CatalogFormat::Text);
        let mut tel = Telemetry::disabled();
        store.store(&sample_snapshot(1), &mut tel).unwrap();
        let delta = CatalogDelta::new(1, 2);
        assert!(store.append_delta(&delta, &mut tel).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sniffing_store_preserves_existing_format() {
        let dir = std::env::temp_dir().join("mdbs-store-test-sniff");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cat");
        let mut tel = Telemetry::disabled();
        // Fresh file: text.
        let sniffer = FileCatalogStore::sniffing(&path);
        assert_eq!(sniffer.format(), CatalogFormat::Text);
        // Once binary content exists, the sniffer keeps writing binary.
        FileCatalogStore::new(&path, CatalogFormat::Binary)
            .store(&sample_snapshot(2), &mut tel)
            .unwrap();
        assert_eq!(sniffer.format(), CatalogFormat::Binary);
        sniffer.store(&sample_snapshot(3), &mut tel).unwrap();
        assert_eq!(sniffer.load(&mut tel).unwrap().version, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_or_empty_on_missing_file() {
        let store = FileCatalogStore::sniffing("/nonexistent/definitely/missing.catalog");
        let mut tel = Telemetry::disabled();
        let snap = store.load_or_empty(&mut tel).unwrap();
        assert_eq!(snap.version, 0);
        assert!(snap.catalog.is_empty());
        assert!(store.load(&mut tel).is_err(), "plain load still errors");
    }

    #[test]
    fn text_load_reads_versioned_text() {
        let dir = std::env::temp_dir().join("mdbs-store-test-text-version");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cat.txt");
        let snap = sample_snapshot(9);
        std::fs::write(&path, snap.catalog.export_versioned(9)).unwrap();
        let mut tel = Telemetry::disabled();
        let back = FileCatalogStore::sniffing(&path).load(&mut tel).unwrap();
        assert_eq!(back.version, 9);
        std::fs::remove_dir_all(&dir).ok();
    }
}
