//! A long-lived estimation server over [`ModelRegistry`] snapshots.
//!
//! The paper's premise is a *dynamic* multidatabase environment: contention
//! shifts under live traffic and the cost models must be revised while
//! estimates keep flowing. The one-shot `serve` batch answers a file and
//! exits; this module is the persistent version (ROADMAP item 1):
//!
//! * an **admission queue + micro-batching front-end** — estimation
//!   requests enter a bounded queue and are drained in small batches onto
//!   the scoped-thread [`pool`], each request priced against an immutable
//!   [`ModelRegistry`] `Arc` snapshot, so serving never blocks behind
//!   maintenance;
//! * a **background maintenance loop** — observed execution costs are
//!   folded through [`ModelMaintainer::observe`]; enough fresh evidence
//!   triggers [`ModelMaintainer::refit_incremental`] (O(k³), no rescan) and
//!   a tripped drift monitor triggers [`rederive_drifted`] on the pool —
//!   either way the fresh model is *published* as a new registry snapshot
//!   and readers switch over atomically;
//! * explicit **backpressure** — the queue is bounded (arrivals beyond
//!   capacity are shed deterministically) and queued requests past their
//!   deadline are shed at dispatch time; queue depth and shed counts are
//!   first-class telemetry.
//!
//! ## Virtual time
//!
//! The loop runs on a deterministic virtual-time driver: every request,
//! observation and environment change arrives as a timestamped line of a
//! [`RequestTrace`], and all queueing/batching/shedding decisions are pure
//! functions of those timestamps and the [`ServeConfig`] — no wall clock on
//! any decision path (per the `mdbs-lint` policy). A scripted trace
//! therefore replays **byte-identically at any worker count**: batches go
//! to the pool, but the pool returns results in job order and every
//! per-line agent is seeded by `split_stream(seed, lineno)`. Latency is
//! measured in virtual seconds (completion minus arrival), which makes tail
//! latency itself reproducible.
//!
//! Service is modelled as a serial backend: a dispatched batch occupies the
//! server for `service_cost_s × batch_len` virtual seconds, during which
//! arrivals keep queueing (and can overflow). This is what produces real
//! backpressure dynamics — bursts fill the queue, the shed policy kicks in,
//! and the depth/latency histograms record it — while staying replayable.
//!
//! ## Observability
//!
//! Every request is minted a deterministic **trace id** at admission
//! (line number + a seed-derived tag) that follows it through queueing,
//! batch dispatch, estimation and its shed/answer outcome; the whole
//! lifecycle lands as one record in the [`FlightRecorder`] ring
//! (`ServeConfig::flight_capacity`), alongside every maintenance event
//! (refits, rederivations, degrades) and anomaly (shed bursts, rederive
//! failures). Observed-vs-served residuals fold into a per-(site, state)
//! [`AccuracyLedger`] exported in the report, the telemetry and
//! [`ServeReport::to_json`]. With `ServeConfig::heartbeat_s > 0`, a
//! snapshot record (queue depth, shed counters, registry version, ledger
//! totals) is emitted every Δt of *virtual* time, turning a replay into
//! a time series. All of it is seed-pure: flight dumps and stripped
//! telemetry stay byte-identical at any worker count.

use crate::catalog::SiteId;
use crate::classes::{classify, QueryClass};
use crate::correction::{CellUpdate, CorrectionConfig, CorrectionLedger, EstimateQuery};
use crate::maintenance::{rederive_drifted, ModelMaintainer};
use crate::observation::Observation;
use crate::pipeline::PipelineCtx;
use crate::pool;
use crate::registry::{EstimateDetail, ModelRegistry};
use crate::validate::TestPoint;
use crate::variables::VariableFamily;
use mdbs_obs::json::Json;
use mdbs_obs::metrics::percentile_sorted;
use mdbs_obs::recorder::{AccuracyLedger, FlightRecorder, LedgerSummary};
use mdbs_obs::Telemetry;
use mdbs_sim::events::EnvironmentEvent;
use mdbs_sim::sql::parse_query;
use mdbs_sim::MdbsAgent;
use mdbs_stats::rng::split_stream;
use std::collections::{BTreeMap, VecDeque};

/// Knobs of the serving loop. All times are virtual seconds.
///
/// Marked `#[non_exhaustive]`: external crates construct it through
/// [`ServeConfig::builder`], so new knobs (like the `correction_*` family)
/// can be added without breaking callers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Admission-queue capacity; arrivals beyond it are shed (queue-full).
    pub queue_capacity: usize,
    /// Largest micro-batch dispatched to the pool at once.
    pub batch_max: usize,
    /// How long a non-full batch waits for more arrivals before dispatch.
    pub batch_delay_s: f64,
    /// Virtual service cost per request (a batch of n occupies the server
    /// for `n × service_cost_s`).
    pub service_cost_s: f64,
    /// Requests queued longer than this are shed at dispatch time.
    pub deadline_s: f64,
    /// Pending observations per model before an incremental refit runs.
    pub refit_threshold: usize,
    /// Worker threads per dispatched batch (`None` → available
    /// parallelism). Never affects the report or stripped telemetry.
    pub workers: Option<usize>,
    /// Virtual-time heartbeat interval in seconds; `0` disables
    /// heartbeats.
    pub heartbeat_s: f64,
    /// Flight-recorder ring capacity (retained request lifecycles); `0`
    /// disables flight recording entirely.
    pub flight_capacity: usize,
    /// Enables the online correction layer ([`crate::correction`]): served
    /// estimates are adjusted by the learned per-(site, state) bias, and
    /// saturated bias escalates maintenance. Off by default.
    pub correction: bool,
    /// EWMA smoothing factor of the correction bias/scale statistics, in
    /// `(0, 1]`.
    pub correction_ewma_alpha: f64,
    /// `|bias|` at which a correction cell saturates and escalates to an
    /// incremental refit (then suspension).
    pub correction_saturation: f64,
    /// Upper bound on correction *and* accuracy-ledger cells; the
    /// least-recently-touched cell is evicted beyond it
    /// (`serve.ledger.evictions` / `serve.correction.evictions`).
    pub ledger_max_cells: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let correction = CorrectionConfig::default();
        ServeConfig {
            queue_capacity: 64,
            batch_max: 8,
            batch_delay_s: 0.05,
            service_cost_s: 0.01,
            deadline_s: 2.0,
            refit_threshold: 24,
            workers: None,
            heartbeat_s: 0.0,
            flight_capacity: 256,
            correction: false,
            correction_ewma_alpha: correction.ewma_alpha,
            correction_saturation: correction.saturation,
            ledger_max_cells: correction.max_cells,
        }
    }
}

impl ServeConfig {
    /// A builder seeded with [`ServeConfig::default`] — the one way for
    /// external crates to construct a config, since the struct is
    /// `#[non_exhaustive]`.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            cfg: ServeConfig::default(),
        }
    }

    /// Clamps degenerate values (zero capacity/batch/threshold, negative
    /// times, out-of-range correction knobs) to the smallest sane ones.
    /// The lenient counterpart of [`ServeConfigBuilder::build`], applied on
    /// server construction so a hand-assembled config can never wedge the
    /// loop.
    fn clamped(self) -> Self {
        ServeConfig {
            queue_capacity: self.queue_capacity.max(1),
            batch_max: self.batch_max.max(1),
            batch_delay_s: self.batch_delay_s.max(0.0),
            service_cost_s: self.service_cost_s.max(0.0),
            deadline_s: self.deadline_s.max(0.0),
            refit_threshold: self.refit_threshold.max(1),
            workers: self.workers,
            heartbeat_s: if self.heartbeat_s.is_finite() {
                self.heartbeat_s.max(0.0)
            } else {
                0.0
            },
            flight_capacity: self.flight_capacity,
            correction: self.correction,
            correction_ewma_alpha: if self.correction_ewma_alpha.is_finite() {
                self.correction_ewma_alpha.clamp(1e-6, 1.0)
            } else {
                CorrectionConfig::default().ewma_alpha
            },
            correction_saturation: if self.correction_saturation.is_finite() {
                self.correction_saturation.max(1e-6)
            } else {
                CorrectionConfig::default().saturation
            },
            ledger_max_cells: self.ledger_max_cells.max(1),
        }
    }

    /// The correction-layer slice of the config.
    pub(crate) fn correction_config(&self) -> CorrectionConfig {
        CorrectionConfig {
            ewma_alpha: self.correction_ewma_alpha,
            saturation: self.correction_saturation,
            max_cells: self.ledger_max_cells,
        }
    }
}

/// Builder for [`ServeConfig`]: every setter overrides one default, and
/// [`ServeConfigBuilder::build`] rejects degenerate combinations instead of
/// silently clamping them.
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    cfg: ServeConfig,
}

impl ServeConfigBuilder {
    /// Admission-queue capacity (must be ≥ 1).
    pub fn queue_capacity(mut self, v: usize) -> Self {
        self.cfg.queue_capacity = v;
        self
    }

    /// Largest micro-batch dispatched at once (must be ≥ 1).
    pub fn batch_max(mut self, v: usize) -> Self {
        self.cfg.batch_max = v;
        self
    }

    /// Batch linger time in virtual seconds (must be finite and ≥ 0).
    pub fn batch_delay_s(mut self, v: f64) -> Self {
        self.cfg.batch_delay_s = v;
        self
    }

    /// Virtual service cost per request (must be finite and ≥ 0).
    pub fn service_cost_s(mut self, v: f64) -> Self {
        self.cfg.service_cost_s = v;
        self
    }

    /// Queueing deadline in virtual seconds (must be finite and ≥ 0).
    pub fn deadline_s(mut self, v: f64) -> Self {
        self.cfg.deadline_s = v;
        self
    }

    /// Pending observations per model before an incremental refit (≥ 1).
    pub fn refit_threshold(mut self, v: usize) -> Self {
        self.cfg.refit_threshold = v;
        self
    }

    /// Worker threads per dispatched batch (`None` → available
    /// parallelism).
    pub fn workers(mut self, v: Option<usize>) -> Self {
        self.cfg.workers = v;
        self
    }

    /// Virtual-time heartbeat interval; `0` disables heartbeats (must be
    /// finite and ≥ 0).
    pub fn heartbeat_s(mut self, v: f64) -> Self {
        self.cfg.heartbeat_s = v;
        self
    }

    /// Flight-recorder ring capacity; `0` disables flight recording.
    pub fn flight_capacity(mut self, v: usize) -> Self {
        self.cfg.flight_capacity = v;
        self
    }

    /// Enables/disables the online correction layer.
    pub fn correction(mut self, on: bool) -> Self {
        self.cfg.correction = on;
        self
    }

    /// Correction EWMA smoothing factor (must be in `(0, 1]`).
    pub fn correction_ewma_alpha(mut self, v: f64) -> Self {
        self.cfg.correction_ewma_alpha = v;
        self
    }

    /// Correction saturation threshold on `|bias|` (must be finite, > 0).
    pub fn correction_saturation(mut self, v: f64) -> Self {
        self.cfg.correction_saturation = v;
        self
    }

    /// Bound on correction/accuracy-ledger cells (must be ≥ 1).
    pub fn ledger_max_cells(mut self, v: usize) -> Self {
        self.cfg.ledger_max_cells = v;
        self
    }

    /// Validates and returns the config. Degenerate knobs are an error
    /// here (the builder is the caller's chance to hear about a typo'd
    /// flag), unlike server construction, which clamps defensively.
    pub fn build(self) -> Result<ServeConfig, crate::CoreError> {
        let c = &self.cfg;
        let degenerate = |what: &str| Err(crate::CoreError::Degenerate(what.to_string()));
        if c.queue_capacity == 0 {
            return degenerate("queue_capacity must be >= 1");
        }
        if c.batch_max == 0 {
            return degenerate("batch_max must be >= 1");
        }
        if !c.batch_delay_s.is_finite() || c.batch_delay_s < 0.0 {
            return degenerate("batch_delay_s must be finite and >= 0");
        }
        if !c.service_cost_s.is_finite() || c.service_cost_s < 0.0 {
            return degenerate("service_cost_s must be finite and >= 0");
        }
        if !c.deadline_s.is_finite() || c.deadline_s < 0.0 {
            return degenerate("deadline_s must be finite and >= 0");
        }
        if c.refit_threshold == 0 {
            return degenerate("refit_threshold must be >= 1");
        }
        if !c.heartbeat_s.is_finite() || c.heartbeat_s < 0.0 {
            return degenerate("heartbeat_s must be finite and >= 0");
        }
        if !c.correction_ewma_alpha.is_finite()
            || c.correction_ewma_alpha <= 0.0
            || c.correction_ewma_alpha > 1.0
        {
            return degenerate("correction_ewma_alpha must be in (0, 1]");
        }
        if !c.correction_saturation.is_finite() || c.correction_saturation <= 0.0 {
            return degenerate("correction_saturation must be finite and > 0");
        }
        if c.ledger_max_cells == 0 {
            return degenerate("ledger_max_cells must be >= 1");
        }
        Ok(self.cfg)
    }
}

/// One event of a request trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// An estimation request: price `sql` at `site`.
    Request {
        /// Target site.
        site: SiteId,
        /// The SQL text to price.
        sql: String,
    },
    /// Execution feedback: run `sql` at `site`, compare the observed cost
    /// against the served estimate, feed the model's maintainer.
    Observe {
        /// Target site.
        site: SiteId,
        /// The SQL text to execute.
        sql: String,
    },
    /// A durable environment change at `site`: page-I/O costs multiplied by
    /// `factor` (> 1 = slower disks). Stale models drift until maintenance
    /// rebuilds them against the changed site.
    Degrade {
        /// Target site.
        site: SiteId,
        /// Multiplicative I/O cost factor (must be finite and positive).
        factor: f64,
    },
}

/// A trace event with its virtual arrival time and source line.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedEvent {
    /// Virtual arrival time (seconds).
    pub at_s: f64,
    /// 1-based line number in the trace file.
    pub lineno: usize,
    /// What arrives.
    pub event: TraceEvent,
}

/// A parsed request/observation trace.
///
/// Malformed lines never abort the parse: they are collected in
/// [`RequestTrace::errors`] with their line numbers and reported inline by
/// the server, exactly like the batch `serve` command's per-line errors —
/// one bad line must not drop the trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RequestTrace {
    /// Well-formed events, in file order (timestamps are non-decreasing).
    pub events: Vec<TracedEvent>,
    /// `(lineno, message)` for every malformed line.
    pub errors: Vec<(usize, String)>,
}

impl RequestTrace {
    /// Parses trace text. Each non-blank, non-`#` line is
    ///
    /// ```text
    /// @TIME request SITE SQL...
    /// @TIME observe SITE SQL...
    /// @TIME degrade SITE FACTOR
    /// ```
    ///
    /// with `TIME` in non-decreasing virtual seconds. Bad lines land in
    /// [`RequestTrace::errors`] and do not advance the clock.
    pub fn parse(text: &str) -> RequestTrace {
        let mut trace = RequestTrace::default();
        let mut last_at = 0.0f64;
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match parse_trace_line(line, last_at) {
                Ok((at_s, event)) => {
                    last_at = at_s;
                    trace.events.push(TracedEvent {
                        at_s,
                        lineno,
                        event,
                    });
                }
                Err(msg) => trace.errors.push((lineno, msg)),
            }
        }
        trace
    }

    /// Number of well-formed events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no well-formed event was parsed.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

fn parse_trace_line(line: &str, last_at: f64) -> Result<(f64, TraceEvent), String> {
    let rest = line
        .strip_prefix('@')
        .ok_or_else(|| "expected `@TIME request|observe|degrade SITE ...`".to_string())?;
    let (time_word, rest) = rest
        .split_once(char::is_whitespace)
        .ok_or_else(|| "expected an event after the timestamp".to_string())?;
    let at_s: f64 = time_word
        .parse()
        .map_err(|_| format!("bad timestamp `{time_word}`"))?;
    if !at_s.is_finite() || at_s < 0.0 {
        return Err(format!(
            "timestamp must be finite and >= 0, got `{time_word}`"
        ));
    }
    if at_s < last_at {
        return Err(format!(
            "timestamp {at_s} goes backwards (previous event at {last_at})"
        ));
    }
    let (kind, rest) = rest
        .trim()
        .split_once(char::is_whitespace)
        .ok_or_else(|| "expected `SITE ...` after the event kind".to_string())?;
    let rest = rest.trim();
    let event = match kind {
        "request" | "observe" => {
            let (site, sql) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| format!("expected `SITE SQL...` after `{kind}`"))?;
            let sql = sql.trim();
            if sql.is_empty() {
                return Err(format!("empty SQL after `{kind} {site}`"));
            }
            if kind == "request" {
                TraceEvent::Request {
                    site: site.into(),
                    sql: sql.to_string(),
                }
            } else {
                TraceEvent::Observe {
                    site: site.into(),
                    sql: sql.to_string(),
                }
            }
        }
        "degrade" => {
            let (site, factor_word) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| "expected `SITE FACTOR` after `degrade`".to_string())?;
            let factor: f64 = factor_word
                .trim()
                .parse()
                .map_err(|_| format!("bad degrade factor `{}`", factor_word.trim()))?;
            if !factor.is_finite() || factor <= 0.0 {
                return Err(format!(
                    "degrade factor must be finite and > 0, got {factor}"
                ));
            }
            TraceEvent::Degrade {
                site: site.into(),
                factor,
            }
        }
        other => return Err(format!("unknown event kind `{other}`")),
    };
    Ok((at_s, event))
}

/// What one trace replay did, with the deterministic rendered report.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// The full human-readable report (summary + per-line outcomes), a pure
    /// function of trace, seed and config — byte-identical at any worker
    /// count.
    pub rendered: String,
    /// Estimation requests admitted or shed.
    pub requests: usize,
    /// Requests answered with an estimate.
    pub answered: usize,
    /// Requests whose class had no registered model.
    pub no_model: usize,
    /// Malformed trace lines plus per-line processing failures.
    pub errors: usize,
    /// Requests shed because the queue was full at arrival.
    pub shed_queue_full: usize,
    /// Requests shed because they out-waited the deadline.
    pub shed_deadline: usize,
    /// Micro-batches dispatched.
    pub batches: usize,
    /// Largest queue depth observed.
    pub max_queue_depth: usize,
    /// Observation events processed.
    pub observations: usize,
    /// Incremental refits published.
    pub incremental_refits: usize,
    /// Drift-triggered rederivations published.
    pub rederivations: usize,
    /// Virtual time at which the last work finished.
    pub virtual_makespan_s: f64,
    /// Median request latency in virtual seconds (0 when nothing served).
    pub latency_p50_s: f64,
    /// 95th-percentile request latency in virtual seconds.
    pub latency_p95_s: f64,
    /// 99th-percentile request latency in virtual seconds.
    pub latency_p99_s: f64,
    /// Virtual-time heartbeat snapshots emitted
    /// (`ServeConfig::heartbeat_s`).
    pub heartbeats: usize,
    /// Estimates (served answers and observation-time estimates) the
    /// correction layer actually adjusted (0 with correction off).
    pub corrections_applied: usize,
    /// Escalations the correction layer triggered: saturation refits plus
    /// cell suspensions (0 with correction off).
    pub correction_escalations: usize,
    /// Pooled median |relative error| across every accuracy-ledger sample
    /// (0 when no observation carried an estimate) — the quality number
    /// the correction layer exists to push down.
    pub ledger_p50_abs_rel_err: f64,
    /// Pooled 95th-percentile |relative error| across every ledger sample.
    pub ledger_p95_abs_rel_err: f64,
    /// Accuracy-ledger cells evicted by the `ledger_max_cells` bound.
    pub ledger_evictions: u64,
    /// Per-(site, state) accuracy of served estimates against observed
    /// costs, in key order (empty when no observation carried an
    /// estimate).
    pub ledger: Vec<LedgerSummary>,
}

impl ServeReport {
    /// Sustained throughput: answered requests per virtual second.
    pub fn throughput_per_virtual_s(&self) -> f64 {
        if self.virtual_makespan_s > 0.0 {
            self.answered as f64 / self.virtual_makespan_s
        } else {
            0.0
        }
    }

    /// Fraction of arrived requests that were shed (0 when none arrived).
    pub fn shed_fraction(&self) -> f64 {
        if self.requests > 0 {
            (self.shed_queue_full + self.shed_deadline) as f64 / self.requests as f64
        } else {
            0.0
        }
    }

    /// The report as a machine-readable JSON object: every counter, the
    /// virtual-time latency summary and the accuracy ledger. A pure
    /// function of (trace, seed, config) like the rendered text.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("requests".to_string(), Json::from(self.requests)),
            ("answered".to_string(), Json::from(self.answered)),
            ("no_model".to_string(), Json::from(self.no_model)),
            ("errors".to_string(), Json::from(self.errors)),
            (
                "shed_queue_full".to_string(),
                Json::from(self.shed_queue_full),
            ),
            ("shed_deadline".to_string(), Json::from(self.shed_deadline)),
            (
                "shed_fraction".to_string(),
                Json::from(self.shed_fraction()),
            ),
            ("batches".to_string(), Json::from(self.batches)),
            (
                "max_queue_depth".to_string(),
                Json::from(self.max_queue_depth),
            ),
            ("observations".to_string(), Json::from(self.observations)),
            (
                "incremental_refits".to_string(),
                Json::from(self.incremental_refits),
            ),
            ("rederivations".to_string(), Json::from(self.rederivations)),
            (
                "virtual_makespan_s".to_string(),
                Json::from(self.virtual_makespan_s),
            ),
            ("latency_p50_s".to_string(), Json::from(self.latency_p50_s)),
            ("latency_p95_s".to_string(), Json::from(self.latency_p95_s)),
            ("latency_p99_s".to_string(), Json::from(self.latency_p99_s)),
            (
                "throughput_per_virtual_s".to_string(),
                Json::from(self.throughput_per_virtual_s()),
            ),
            ("heartbeats".to_string(), Json::from(self.heartbeats)),
            (
                "corrections_applied".to_string(),
                Json::from(self.corrections_applied),
            ),
            (
                "correction_escalations".to_string(),
                Json::from(self.correction_escalations),
            ),
            (
                "ledger_p50_abs_rel_err".to_string(),
                Json::from(self.ledger_p50_abs_rel_err),
            ),
            (
                "ledger_p95_abs_rel_err".to_string(),
                Json::from(self.ledger_p95_abs_rel_err),
            ),
            (
                "ledger_evictions".to_string(),
                Json::from(self.ledger_evictions),
            ),
            (
                "ledger".to_string(),
                Json::Arr(self.ledger.iter().map(LedgerSummary::to_json).collect()),
            ),
        ])
    }
}

/// Stream salt for trace-id tags, so ids never collide with the per-line
/// agent seed stream.
const TRACE_ID_STREAM: u64 = 0x7472_6163_655f_6964; // "trace_id"

/// Deterministic request trace id, minted at admission: the 1-based trace
/// line number (hex) plus a seed-derived tag. Unique per line by
/// construction, and a pure function of `(seed, lineno)` — identical at
/// every worker count.
fn mint_trace_id(root_seed: u64, lineno: usize) -> String {
    let tag = split_stream(root_seed ^ TRACE_ID_STREAM, lineno as u64);
    format!("{lineno:04x}-{:012x}", tag & 0xffff_ffff_ffff)
}

/// A request sitting in the admission queue.
#[derive(Debug, Clone)]
struct QueuedRequest {
    trace_id: String,
    lineno: usize,
    arrived_s: f64,
    site: SiteId,
    sql: String,
}

/// The outcome of pricing one request against a registry snapshot.
enum ServedAnswer {
    Estimate {
        class: QueryClass,
        probe: f64,
        detail: EstimateDetail,
    },
    NoModel {
        class: QueryClass,
    },
}

/// One executed observation, before it is routed to a maintainer.
struct ObservedSample {
    class: QueryClass,
    probe: f64,
    observed: f64,
    estimate: Option<EstimateDetail>,
    x: Vec<f64>,
}

/// The long-lived estimation server: a registry serving the hot path, a
/// fleet of maintainers keeping its models fresh, and the loop config.
#[derive(Debug)]
pub struct EstimationServer {
    /// The concurrent registry requests are priced against.
    pub registry: ModelRegistry,
    fleet: Vec<(SiteId, ModelMaintainer)>,
    config: ServeConfig,
    recorder: FlightRecorder,
}

impl EstimationServer {
    /// A server over `registry` with the given maintainer fleet.
    ///
    /// Invariant: every fleet site must be constructible by the `make_agent`
    /// closure later passed to [`EstimationServer::run`] (rederivation
    /// builds agents for drifted fleet members).
    pub fn new(
        registry: ModelRegistry,
        fleet: Vec<(SiteId, ModelMaintainer)>,
        config: ServeConfig,
    ) -> Self {
        let config = config.clamped();
        let recorder = FlightRecorder::new(config.flight_capacity);
        EstimationServer {
            registry,
            fleet,
            config,
            recorder,
        }
    }

    /// The maintainer fleet (site, maintainer) in construction order.
    pub fn fleet(&self) -> &[(SiteId, ModelMaintainer)] {
        &self.fleet
    }

    /// The flight recorder: request lifecycles (bounded ring) plus
    /// maintenance/heartbeat/anomaly events accumulated by
    /// [`EstimationServer::run`]. Dump with
    /// [`FlightRecorder::dump_jsonl`].
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Replays a request/observation trace through the serving loop.
    ///
    /// `make_agent` builds a deterministic per-line site agent from a seed
    /// split off `ctx.seed` by the trace line number; it returns `None` for
    /// sites it cannot build (reported as a per-line error, never fatal).
    /// The returned report and the deterministic part of `ctx.telemetry`
    /// are pure functions of `(trace, ctx.seed, config)` — independent of
    /// `config.workers`.
    pub fn run<F>(
        &mut self,
        trace: &RequestTrace,
        make_agent: F,
        ctx: &mut PipelineCtx,
    ) -> ServeReport
    where
        F: Fn(&SiteId, u64) -> Option<MdbsAgent> + Sync,
    {
        let EstimationServer {
            registry,
            fleet,
            config,
            recorder,
        } = self;
        let registry: &ModelRegistry = registry;
        let config = config.clone();
        let root_seed = ctx.seed;
        let span = ctx.telemetry.begin_span("serve.loop");
        ctx.telemetry
            .field(span, "events", trace.events.len() as u64);
        ctx.telemetry.field(span, "fleet", fleet.len() as u64);

        let mut queue: VecDeque<QueuedRequest> = VecDeque::new();
        let mut degradation: BTreeMap<SiteId, f64> = BTreeMap::new();
        let mut pending: Vec<Vec<Observation>> = vec![Vec::new(); fleet.len()];
        let mut lines: Vec<String> = Vec::new();
        let mut latencies: Vec<f64> = Vec::new();
        let mut report = ServeReport {
            rendered: String::new(),
            requests: 0,
            answered: 0,
            no_model: 0,
            errors: 0,
            shed_queue_full: 0,
            shed_deadline: 0,
            batches: 0,
            max_queue_depth: 0,
            observations: 0,
            incremental_refits: 0,
            rederivations: 0,
            virtual_makespan_s: 0.0,
            latency_p50_s: 0.0,
            latency_p95_s: 0.0,
            latency_p99_s: 0.0,
            heartbeats: 0,
            corrections_applied: 0,
            correction_escalations: 0,
            ledger_p50_abs_rel_err: 0.0,
            ledger_p95_abs_rel_err: 0.0,
            ledger_evictions: 0,
            ledger: Vec::new(),
        };
        let (mut pool_jobs, mut pool_steals, mut pool_workers) = (0usize, 0u64, 0usize);
        let mut ledger = AccuracyLedger::bounded(config.ledger_max_cells);
        // The correction layer's state. Mutated only here in the serial
        // event loop; pool workers read it through a shared reference, so
        // every corrected estimate is worker-count-independent.
        let mut correction_ledger = CorrectionLedger::new(config.correction_config());
        // Per-fleet-member saturation-refit budget: the first saturation
        // of a model's correction escalates to an incremental refit; once
        // spent, further saturation suspends the cell instead, so raw
        // estimate quality reaches the drift monitor and the heavy rung
        // can fire. Restored by a rederivation.
        const SATURATION_REFIT_BUDGET: usize = 1;
        let mut saturation_budget: Vec<usize> = vec![SATURATION_REFIT_BUDGET; fleet.len()];
        // Virtual-time heartbeat schedule: the next tick, or never.
        let mut next_hb = if config.heartbeat_s > 0.0 {
            config.heartbeat_s
        } else {
            f64::INFINITY
        };
        // Consecutive queue-full sheds, for shed-burst anomaly detection.
        let mut queue_full_streak = 0usize;

        // Malformed trace lines are reported up front; they carry no
        // timestamp that survived parsing, so they cannot be interleaved.
        for (lineno, msg) in &trace.errors {
            report.errors += 1;
            ctx.telemetry.inc("serve.line_errors", 1);
            lines.push(format!("  {lineno:>3} ERROR: {msg}"));
        }

        let mut clock = 0.0f64;
        let mut busy_until = 0.0f64;
        let mut events = trace.events.iter().peekable();
        loop {
            // When could the server next start a batch?
            let trigger = if queue.is_empty() {
                None
            } else if queue.len() >= config.batch_max {
                Some(busy_until.max(clock))
            } else {
                let head_arrived = queue.front().expect("non-empty").arrived_s;
                Some(busy_until.max(head_arrived + config.batch_delay_s))
            };
            let next_event_at = events.peek().map(|e| e.at_s);
            // Dispatch when the batch trigger fires no later than the next
            // arrival (ties dispatch first); otherwise admit the arrival.
            let dispatch = match (trigger, next_event_at) {
                (Some(t_batch), Some(t_event)) => t_batch <= t_event,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if dispatch {
                let t_batch = trigger.expect("dispatch implies a trigger");
                while next_hb <= t_batch {
                    emit_heartbeat(
                        next_hb,
                        queue.len(),
                        &mut report,
                        registry.version(),
                        &ledger,
                        config.correction.then_some(&correction_ledger),
                        pool_jobs,
                        &mut ctx.telemetry,
                        recorder,
                    );
                    next_hb += config.heartbeat_s;
                }
                clock = clock.max(t_batch);
                // Deadline shed: queued requests that out-waited their
                // deadline are answered with a shed, not served late.
                let mut deadline_shed_now = 0usize;
                while let Some(front) = queue.front() {
                    if clock - front.arrived_s > config.deadline_s {
                        let q = queue.pop_front().expect("front exists");
                        report.shed_deadline += 1;
                        deadline_shed_now += 1;
                        ctx.telemetry.inc("serve.shed.deadline", 1);
                        lines.push(format!(
                            "  {:>3} @{:.3} SHED (deadline: waited {:.3}s)",
                            q.lineno,
                            clock,
                            clock - q.arrived_s
                        ));
                        recorder.record_request(vec![
                            ("trace_id".to_string(), Json::from(q.trace_id.as_str())),
                            ("lineno".to_string(), Json::from(q.lineno)),
                            ("site".to_string(), Json::from(q.site.0.as_str())),
                            ("sql".to_string(), Json::from(q.sql.as_str())),
                            ("arrived_s".to_string(), Json::from(q.arrived_s)),
                            ("shed_s".to_string(), Json::from(clock)),
                            ("waited_s".to_string(), Json::from(clock - q.arrived_s)),
                            ("outcome".to_string(), Json::from("shed_deadline")),
                        ]);
                    } else {
                        break;
                    }
                }
                // A whole batch's worth of deadline sheds in one dispatch
                // is a shed burst: dump-worthy.
                if deadline_shed_now >= config.batch_max {
                    recorder.record_event(
                        "anomaly",
                        vec![
                            ("what".to_string(), Json::from("shed_burst")),
                            ("at_s".to_string(), Json::from(clock)),
                            ("shed_deadline".to_string(), Json::from(deadline_shed_now)),
                        ],
                    );
                }
                let n = queue.len().min(config.batch_max);
                if n == 0 {
                    continue;
                }
                let batch: Vec<(QueuedRequest, f64)> = queue
                    .drain(..n)
                    .map(|q| {
                        let factor = degradation.get(&q.site).copied().unwrap_or(1.0);
                        (q, factor)
                    })
                    .collect();
                let completion = clock + config.service_cost_s * batch.len() as f64;
                let dispatched_s = clock;
                busy_until = completion;
                report.batches += 1;
                let batch_id = report.batches;
                ctx.telemetry.inc("serve.batches", 1);
                ctx.telemetry
                    .observe("serve.batch_size", batch.len() as f64);
                let workers = pool::effective_workers(config.workers, batch.len());
                let make_agent = &make_agent;
                let corrector = config.correction.then_some(&correction_ledger);
                let (results, pool_report) =
                    pool::run_jobs(batch, workers, move |_, (q, factor)| {
                        let outcome =
                            serve_one(registry, make_agent, &q, factor, root_seed, corrector);
                        (q, outcome)
                    });
                pool_jobs += pool_report.jobs_completed;
                pool_steals += pool_report.steals;
                pool_workers = pool_workers.max(pool_report.workers);
                for (q, outcome) in results {
                    let latency = completion - q.arrived_s;
                    // Lifecycle prefix shared by every outcome of this
                    // dispatched request.
                    let mut record = vec![
                        ("trace_id".to_string(), Json::from(q.trace_id.as_str())),
                        ("lineno".to_string(), Json::from(q.lineno)),
                        ("site".to_string(), Json::from(q.site.0.as_str())),
                        ("sql".to_string(), Json::from(q.sql.as_str())),
                        ("arrived_s".to_string(), Json::from(q.arrived_s)),
                        (
                            "queue_wait_s".to_string(),
                            Json::from(dispatched_s - q.arrived_s),
                        ),
                        ("batch".to_string(), Json::from(batch_id)),
                        ("dispatched_s".to_string(), Json::from(dispatched_s)),
                        ("completed_s".to_string(), Json::from(completion)),
                        ("latency_s".to_string(), Json::from(latency)),
                    ];
                    match outcome {
                        Ok(ServedAnswer::Estimate {
                            class,
                            probe,
                            detail,
                        }) => {
                            report.answered += 1;
                            ctx.telemetry.inc("serve.answered", 1);
                            latencies.push(latency);
                            ctx.telemetry.observe("serve.latency_virtual_s", latency);
                            // Corrected answers carry the `±` residual
                            // confidence; uncorrected ones render exactly
                            // as before the correction layer existed.
                            let provenance = if detail.corrected {
                                format!(
                                    "[v{} {} ±{:.0}%]",
                                    detail.version,
                                    detail.state_label,
                                    detail.confidence * 100.0
                                )
                            } else {
                                format!("[v{} {}]", detail.version, detail.state_label)
                            };
                            lines.push(format!(
                                "  {:>3} @{:.3}->@{:.3} ({:.3}s) {} {}: probe {:.3}s -> estimate {:.2}s {}",
                                q.lineno,
                                q.arrived_s,
                                completion,
                                latency,
                                q.site,
                                class.label(),
                                probe,
                                detail.estimate,
                                provenance
                            ));
                            record.extend([
                                ("outcome".to_string(), Json::from("answered")),
                                ("class".to_string(), Json::from(class.label())),
                                ("probe_s".to_string(), Json::from(probe)),
                                ("estimate_s".to_string(), Json::from(detail.estimate)),
                                ("model_version".to_string(), Json::from(detail.version)),
                                ("state".to_string(), Json::from(detail.state_label.as_str())),
                            ]);
                            if detail.corrected {
                                report.corrections_applied += 1;
                                ctx.telemetry.inc("serve.correction.applied", 1);
                                record.extend([
                                    (
                                        "raw_estimate_s".to_string(),
                                        Json::from(detail.raw_estimate),
                                    ),
                                    (
                                        "correction_factor".to_string(),
                                        Json::from(detail.correction),
                                    ),
                                    ("confidence".to_string(), Json::from(detail.confidence)),
                                ]);
                            }
                        }
                        Ok(ServedAnswer::NoModel { class }) => {
                            report.no_model += 1;
                            ctx.telemetry.inc("serve.no_model", 1);
                            latencies.push(latency);
                            ctx.telemetry.observe("serve.latency_virtual_s", latency);
                            lines.push(format!(
                                "  {:>3} @{:.3}->@{:.3} ({:.3}s) {} {}: no model in registry",
                                q.lineno,
                                q.arrived_s,
                                completion,
                                latency,
                                q.site,
                                class.label()
                            ));
                            record.extend([
                                ("outcome".to_string(), Json::from("no_model")),
                                ("class".to_string(), Json::from(class.label())),
                            ]);
                        }
                        Err(msg) => {
                            report.errors += 1;
                            ctx.telemetry.inc("serve.line_errors", 1);
                            lines.push(format!("  {:>3} ERROR: {msg}", q.lineno));
                            record.extend([
                                ("outcome".to_string(), Json::from("error")),
                                ("error".to_string(), Json::from(msg.as_str())),
                            ]);
                        }
                    }
                    recorder.record_request(record);
                }
                continue;
            }
            let ev = events.next().expect("peeked");
            while next_hb <= ev.at_s {
                emit_heartbeat(
                    next_hb,
                    queue.len(),
                    &mut report,
                    registry.version(),
                    &ledger,
                    config.correction.then_some(&correction_ledger),
                    pool_jobs,
                    &mut ctx.telemetry,
                    recorder,
                );
                next_hb += config.heartbeat_s;
            }
            clock = clock.max(ev.at_s);
            match &ev.event {
                TraceEvent::Request { site, sql } => {
                    report.requests += 1;
                    ctx.telemetry.inc("serve.requests", 1);
                    let trace_id = mint_trace_id(root_seed, ev.lineno);
                    if queue.len() >= config.queue_capacity {
                        report.shed_queue_full += 1;
                        queue_full_streak += 1;
                        ctx.telemetry.inc("serve.shed.queue_full", 1);
                        lines.push(format!(
                            "  {:>3} @{:.3} SHED (queue full at {})",
                            ev.lineno,
                            ev.at_s,
                            queue.len()
                        ));
                        recorder.record_request(vec![
                            ("trace_id".to_string(), Json::from(trace_id.as_str())),
                            ("lineno".to_string(), Json::from(ev.lineno)),
                            ("site".to_string(), Json::from(site.0.as_str())),
                            ("sql".to_string(), Json::from(sql.as_str())),
                            ("arrived_s".to_string(), Json::from(ev.at_s)),
                            ("queue_depth".to_string(), Json::from(queue.len())),
                            ("outcome".to_string(), Json::from("shed_queue_full")),
                        ]);
                        // A batch's worth of consecutive arrivals bounced
                        // off a full queue: record the burst once, when
                        // the streak crosses the threshold.
                        if queue_full_streak == config.batch_max {
                            recorder.record_event(
                                "anomaly",
                                vec![
                                    ("what".to_string(), Json::from("shed_burst")),
                                    ("at_s".to_string(), Json::from(ev.at_s)),
                                    (
                                        "consecutive_queue_full".to_string(),
                                        Json::from(queue_full_streak),
                                    ),
                                ],
                            );
                        }
                    } else {
                        queue_full_streak = 0;
                        queue.push_back(QueuedRequest {
                            trace_id,
                            lineno: ev.lineno,
                            arrived_s: ev.at_s,
                            site: site.clone(),
                            sql: sql.clone(),
                        });
                        report.max_queue_depth = report.max_queue_depth.max(queue.len());
                        ctx.telemetry
                            .observe("serve.queue_depth", queue.len() as f64);
                    }
                }
                TraceEvent::Degrade { site, factor } => {
                    let cumulative = degradation.entry(site.clone()).or_insert(1.0);
                    *cumulative *= factor;
                    let cumulative = *cumulative;
                    ctx.telemetry.inc("serve.degrades", 1);
                    lines.push(format!(
                        "  {:>3} @{:.3} degrade {} x{:.2} (cumulative x{:.2})",
                        ev.lineno, ev.at_s, site, factor, cumulative
                    ));
                    recorder.record_event(
                        "degrade",
                        vec![
                            ("at_s".to_string(), Json::from(ev.at_s)),
                            ("site".to_string(), Json::from(site.0.as_str())),
                            ("factor".to_string(), Json::from(*factor)),
                            ("cumulative".to_string(), Json::from(cumulative)),
                        ],
                    );
                }
                TraceEvent::Observe { site, sql } => {
                    report.observations += 1;
                    ctx.telemetry.inc("serve.observations", 1);
                    let factor = degradation.get(site).copied().unwrap_or(1.0);
                    let sample = observe_one(
                        registry,
                        &make_agent,
                        site,
                        sql,
                        factor,
                        root_seed,
                        ev.lineno,
                        config.correction.then_some(&correction_ledger),
                    );
                    let sample = match sample {
                        Ok(s) => s,
                        Err(msg) => {
                            report.errors += 1;
                            ctx.telemetry.inc("serve.line_errors", 1);
                            lines.push(format!("  {:>3} ERROR: {msg}", ev.lineno));
                            continue;
                        }
                    };
                    // Every observed cost with a previously-served estimate
                    // feeds the accuracy ledger, keyed by the contention
                    // state the estimate was made in. The accuracy ledger
                    // judges the *served* (corrected) estimate; the
                    // correction ledger learns from the *raw* model output,
                    // so a working correction never erases its own
                    // evidence.
                    let mut update: Option<CellUpdate> = None;
                    if let Some(detail) = &sample.estimate {
                        ledger.record(
                            &site.0,
                            &detail.state_label,
                            detail.estimate,
                            sample.observed,
                        );
                        if detail.corrected {
                            report.corrections_applied += 1;
                            ctx.telemetry.inc("serve.correction.applied", 1);
                        }
                        if config.correction {
                            update = Some(correction_ledger.observe(
                                &site.0,
                                &detail.state_label,
                                detail.raw_estimate,
                                sample.observed,
                            ));
                        }
                    }
                    let idx = fleet
                        .iter()
                        .position(|(s, m)| s == site && m.class() == sample.class);
                    let (Some(i), Some(detail)) = (idx, sample.estimate) else {
                        report.no_model += 1;
                        ctx.telemetry.inc("serve.no_model", 1);
                        lines.push(format!(
                            "  {:>3} @{:.3} observe {} {}: no maintained model",
                            ev.lineno,
                            ev.at_s,
                            site,
                            sample.class.label()
                        ));
                        continue;
                    };
                    let estimate = detail.estimate;
                    let good = TestPoint {
                        observed: sample.observed,
                        estimated: estimate,
                        result_card: 0,
                        probe_cost: sample.probe,
                    }
                    .is_good();
                    let drifted = {
                        let (_, maintainer) = &mut fleet[i];
                        let drifted = maintainer.observe(sample.observed, estimate, ctx);
                        pending[i].push(Observation {
                            x: sample.x,
                            cost: sample.observed,
                            probe_cost: sample.probe,
                        });
                        drifted
                    };
                    lines.push(format!(
                        "  {:>3} @{:.3} observe {} {}: observed {:.2}s vs estimate {:.2}s [v{} {}] ({})",
                        ev.lineno,
                        ev.at_s,
                        site,
                        sample.class.label(),
                        sample.observed,
                        estimate,
                        detail.version,
                        detail.state_label,
                        if good { "good" } else { "off" }
                    ));
                    if drifted {
                        // Rebuild every currently-drifted fleet member on
                        // the pool and publish the fresh snapshots; stale
                        // pending observations predate the new models.
                        let drifted_idx: Vec<usize> = fleet
                            .iter()
                            .enumerate()
                            .filter(|(_, (_, m))| m.monitor.drifted())
                            .map(|(j, _)| j)
                            .collect();
                        let degradation = &degradation;
                        let make_agent = &make_agent;
                        let rebuilt = rederive_drifted(
                            fleet,
                            config.workers,
                            |site, _class, env_seed| {
                                let mut agent = make_agent(site, env_seed)
                                    .expect("fleet sites are agent-constructible");
                                let factor = degradation.get(site).copied().unwrap_or(1.0);
                                apply_degradation(&mut agent, factor)
                                    .expect("degrade factors are validated at parse");
                                agent
                            },
                            Some(registry),
                            ctx,
                        );
                        match rebuilt {
                            Ok(n) => {
                                report.rederivations += n;
                                for &j in &drifted_idx {
                                    pending[j].clear();
                                    // The fresh model starts the ladder
                                    // over: cold correction cells, budget
                                    // restored.
                                    let rebuilt_site = fleet[j].0.clone();
                                    correction_ledger.reset_site(&rebuilt_site.0);
                                    saturation_budget[j] = SATURATION_REFIT_BUDGET;
                                }
                                lines.push(format!(
                                    "  maintenance @{:.3}: rederived {} drifted model(s) -> registry v{}",
                                    ev.at_s,
                                    n,
                                    registry.version()
                                ));
                                recorder.record_event(
                                    "rederive",
                                    vec![
                                        ("at_s".to_string(), Json::from(ev.at_s)),
                                        ("rebuilt".to_string(), Json::from(n)),
                                        (
                                            "registry_version".to_string(),
                                            Json::from(registry.version()),
                                        ),
                                    ],
                                );
                            }
                            Err(e) => {
                                ctx.telemetry.inc("maintenance.rederive_failures", 1);
                                lines.push(format!(
                                    "  maintenance @{:.3}: rederivation FAILED ({e}); serving continues",
                                    ev.at_s
                                ));
                                recorder.record_event(
                                    "anomaly",
                                    vec![
                                        ("what".to_string(), Json::from("rederive_failed")),
                                        ("at_s".to_string(), Json::from(ev.at_s)),
                                        ("error".to_string(), Json::from(e.to_string().as_str())),
                                    ],
                                );
                            }
                        }
                    } else {
                        // Escalation ladder, middle rung: a saturated
                        // correction means the model itself is biased
                        // beyond what the cheap rung should paper over.
                        // The first saturation per model spends its refit
                        // budget; once exhausted, the cell is suspended so
                        // raw estimate quality reaches the drift monitor
                        // and the heavy rung (rederivation) can trip.
                        let mut escalated_refit = false;
                        if let Some(u) = update.filter(|u| u.saturated) {
                            if saturation_budget[i] > 0 {
                                saturation_budget[i] -= 1;
                                escalated_refit = true;
                                report.correction_escalations += 1;
                                ctx.telemetry.inc("serve.correction.escalations", 1);
                                lines.push(format!(
                                    "  maintenance @{:.3}: correction saturated ({} {} bias {:+.2}) -> incremental refit",
                                    ev.at_s, site, detail.state_label, u.bias
                                ));
                                recorder.record_event(
                                    "escalate",
                                    vec![
                                        ("at_s".to_string(), Json::from(ev.at_s)),
                                        ("site".to_string(), Json::from(site.0.as_str())),
                                        (
                                            "state".to_string(),
                                            Json::from(detail.state_label.as_str()),
                                        ),
                                        ("level".to_string(), Json::from("refit")),
                                        ("bias".to_string(), Json::from(u.bias)),
                                        ("samples".to_string(), Json::from(u.samples)),
                                    ],
                                );
                            } else if correction_ledger.suspend(&site.0, &detail.state_label) {
                                report.correction_escalations += 1;
                                ctx.telemetry.inc("serve.correction.escalations", 1);
                                lines.push(format!(
                                    "  maintenance @{:.3}: correction saturated again ({} {} bias {:+.2}) -> cell suspended, raw estimates feed the drift monitor",
                                    ev.at_s, site, detail.state_label, u.bias
                                ));
                                recorder.record_event(
                                    "escalate",
                                    vec![
                                        ("at_s".to_string(), Json::from(ev.at_s)),
                                        ("site".to_string(), Json::from(site.0.as_str())),
                                        (
                                            "state".to_string(),
                                            Json::from(detail.state_label.as_str()),
                                        ),
                                        ("level".to_string(), Json::from("suspend")),
                                        ("bias".to_string(), Json::from(u.bias)),
                                        ("samples".to_string(), Json::from(u.samples)),
                                    ],
                                );
                            }
                        }
                        if escalated_refit || pending[i].len() >= config.refit_threshold {
                            // Cheap path: fold the fresh evidence into the
                            // model's sufficient statistics and republish.
                            // Either way the pending batch is consumed — the
                            // accumulator absorbs it even when the re-solve is
                            // deferred for lack of per-state evidence.
                            let batch = std::mem::take(&mut pending[i]);
                            let (site_id, maintainer) = &mut fleet[i];
                            let site_id = site_id.clone();
                            match maintainer.refit_incremental(
                                &site_id,
                                &batch,
                                Some(registry),
                                ctx,
                            ) {
                                Ok(published) => {
                                    report.incremental_refits += 1;
                                    let version = published.unwrap_or_else(|| registry.version());
                                    lines.push(format!(
                                    "  maintenance @{:.3}: incremental refit {} {} ({} obs) -> registry v{}",
                                    ev.at_s,
                                    site_id,
                                    sample.class.label(),
                                    batch.len(),
                                    version
                                ));
                                    recorder.record_event(
                                        "refit",
                                        vec![
                                            ("at_s".to_string(), Json::from(ev.at_s)),
                                            ("site".to_string(), Json::from(site_id.0.as_str())),
                                            ("class".to_string(), Json::from(sample.class.label())),
                                            ("absorbed".to_string(), Json::from(batch.len())),
                                            ("registry_version".to_string(), Json::from(version)),
                                        ],
                                    );
                                    // The republished model invalidates the
                                    // learned bias: its cells start cold.
                                    correction_ledger.reset_site(&site_id.0);
                                }
                                Err(e) => {
                                    ctx.telemetry.inc("maintenance.refit_deferred", 1);
                                    lines.push(format!(
                                    "  maintenance @{:.3}: refit deferred ({e}); serving continues",
                                    ev.at_s
                                ));
                                    recorder.record_event(
                                        "refit_deferred",
                                        vec![
                                            ("at_s".to_string(), Json::from(ev.at_s)),
                                            ("site".to_string(), Json::from(site_id.0.as_str())),
                                            (
                                                "error".to_string(),
                                                Json::from(e.to_string().as_str()),
                                            ),
                                        ],
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }

        report.virtual_makespan_s = clock.max(busy_until);
        // Trailing heartbeats: the schedule runs to the end of the replay
        // even when the last stretch is pure service time.
        while next_hb <= report.virtual_makespan_s {
            emit_heartbeat(
                next_hb,
                queue.len(),
                &mut report,
                registry.version(),
                &ledger,
                config.correction.then_some(&correction_ledger),
                pool_jobs,
                &mut ctx.telemetry,
                recorder,
            );
            next_hb += config.heartbeat_s;
        }
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        report.latency_p50_s = percentile_sorted(&latencies, 0.50);
        report.latency_p95_s = percentile_sorted(&latencies, 0.95);
        report.latency_p99_s = percentile_sorted(&latencies, 0.99);
        ledger.fold_metrics(&mut ctx.telemetry);
        report.ledger = ledger.summaries();
        let (pooled_p50, pooled_p95) = ledger.pooled_abs_rel_percentiles();
        report.ledger_p50_abs_rel_err = pooled_p50;
        report.ledger_p95_abs_rel_err = pooled_p95;
        report.ledger_evictions = ledger.evictions();
        if config.correction {
            correction_ledger.fold_metrics(&mut ctx.telemetry);
            ctx.telemetry.field(
                span,
                "corrections_applied",
                report.corrections_applied as u64,
            );
            ctx.telemetry.field(
                span,
                "correction_escalations",
                report.correction_escalations as u64,
            );
        }
        ctx.telemetry
            .field(span, "requests", report.requests as u64);
        ctx.telemetry
            .field(span, "answered", report.answered as u64);
        ctx.telemetry.field(
            span,
            "shed",
            (report.shed_queue_full + report.shed_deadline) as u64,
        );
        ctx.telemetry
            .field(span, "observations", report.observations as u64);
        ctx.telemetry
            .field(span, "incremental_refits", report.incremental_refits as u64);
        ctx.telemetry
            .field(span, "rederivations", report.rederivations as u64);
        ctx.telemetry
            .field(span, "heartbeats", report.heartbeats as u64);
        ctx.telemetry
            .field(span, "ledger_cells", report.ledger.len() as u64);
        ctx.telemetry
            .gauge("serve.virtual_makespan_s", report.virtual_makespan_s);
        ctx.telemetry
            .gauge("serve.max_queue_depth", report.max_queue_depth as f64);
        ctx.telemetry.inc("pool.jobs_completed", pool_jobs as u64);
        ctx.telemetry.inc("pool.sched.steals", pool_steals);
        ctx.telemetry
            .gauge("pool.sched.workers", pool_workers as f64);
        registry.fold_metrics(&mut ctx.telemetry);
        ctx.telemetry.end_span(span);

        let mut rendered = format!(
            "serve loop: {} request(s) — {} answered, {} no-model, {} shed ({} queue-full, {} deadline; {:.1}% of requests), {} error line(s)\n",
            report.requests,
            report.answered,
            report.no_model,
            report.shed_queue_full + report.shed_deadline,
            report.shed_queue_full,
            report.shed_deadline,
            report.shed_fraction() * 100.0,
            report.errors
        );
        rendered.push_str(&format!(
            "maintenance: {} observation(s), {} incremental refit(s), {} rederivation(s); registry v{} ({} model(s))\n",
            report.observations,
            report.incremental_refits,
            report.rederivations,
            registry.version(),
            registry.len()
        ));
        rendered.push_str(&format!(
            "virtual time: makespan {:.3}s, latency p50 {:.3}s p95 {:.3}s p99 {:.3}s, peak queue {}, {} batch(es), {} heartbeat(s)\n",
            report.virtual_makespan_s,
            report.latency_p50_s,
            report.latency_p95_s,
            report.latency_p99_s,
            report.max_queue_depth,
            report.batches,
            report.heartbeats
        ));
        if config.correction {
            rendered.push_str(&format!(
                "correction: {} applied, {} escalation(s), {} live cell(s), pooled |rel err| p50 {:.3} p95 {:.3}\n",
                report.corrections_applied,
                report.correction_escalations,
                correction_ledger.len(),
                report.ledger_p50_abs_rel_err,
                report.ledger_p95_abs_rel_err
            ));
        }
        rendered.push_str(&ledger.render());
        for line in &lines {
            rendered.push_str(line);
            rendered.push('\n');
        }
        report.rendered = rendered;
        report
    }
}

/// Emits one virtual-time heartbeat: a `serve.heartbeat` telemetry span
/// and a flight-recorder event, both carrying the same snapshot of the
/// serving state at virtual second `at_s`. Every field is seed-pure.
#[allow(clippy::too_many_arguments)]
fn emit_heartbeat(
    at_s: f64,
    queue_depth: usize,
    report: &mut ServeReport,
    registry_version: u64,
    ledger: &AccuracyLedger,
    correction: Option<&CorrectionLedger>,
    pool_jobs: usize,
    telemetry: &mut Telemetry,
    recorder: &mut FlightRecorder,
) {
    report.heartbeats += 1;
    telemetry.inc("serve.heartbeats", 1);
    let mut snapshot: Vec<(String, Json)> = vec![
        ("at_s".to_string(), Json::from(at_s)),
        ("queue_depth".to_string(), Json::from(queue_depth)),
        ("requests".to_string(), Json::from(report.requests)),
        ("answered".to_string(), Json::from(report.answered)),
        (
            "shed_queue_full".to_string(),
            Json::from(report.shed_queue_full),
        ),
        (
            "shed_deadline".to_string(),
            Json::from(report.shed_deadline),
        ),
        ("batches".to_string(), Json::from(report.batches)),
        ("observations".to_string(), Json::from(report.observations)),
        (
            "incremental_refits".to_string(),
            Json::from(report.incremental_refits),
        ),
        (
            "rederivations".to_string(),
            Json::from(report.rederivations),
        ),
        ("registry_version".to_string(), Json::from(registry_version)),
        ("ledger_cells".to_string(), Json::from(ledger.len())),
        ("ledger_samples".to_string(), Json::from(ledger.samples())),
        (
            "ledger_evictions".to_string(),
            Json::from(ledger.evictions()),
        ),
        ("pool_jobs".to_string(), Json::from(pool_jobs)),
    ];
    // Correction state rides along only when the layer is on, so
    // correction-off heartbeats keep their historical shape.
    if let Some(correction) = correction {
        snapshot.extend([
            ("correction_cells".to_string(), Json::from(correction.len())),
            (
                "correction_applied".to_string(),
                Json::from(report.corrections_applied),
            ),
            (
                "correction_max_bias".to_string(),
                Json::from(correction.max_abs_bias()),
            ),
        ]);
    }
    let span = telemetry.begin_span("serve.heartbeat");
    for (key, value) in &snapshot {
        telemetry.field(span, key, value.clone());
    }
    telemetry.end_span(span);
    recorder.record_event("heartbeat", snapshot);
}

/// Builds the maintainer fleet for every catalog model whose site passes
/// `site_filter`, restoring persisted fit accumulators when present so
/// incremental refits resume from the full fitting sample.
pub fn fleet_from_catalog(
    catalog: &crate::catalog::GlobalCatalog,
    maintenance: crate::maintenance::MaintenanceConfig,
    derivation: crate::derive::DerivationConfig,
    algorithm: crate::states::StateAlgorithm,
    site_filter: impl Fn(&SiteId) -> bool,
) -> Result<Vec<(SiteId, ModelMaintainer)>, crate::CoreError> {
    let mut fleet = Vec::new();
    for site in catalog.sites() {
        if !site_filter(&site) {
            continue;
        }
        for class in catalog.classes_for(&site) {
            let model = catalog.model(&site, class).expect("listed by the catalog");
            let maintainer = ModelMaintainer::from_model(
                class,
                model.clone(),
                catalog.accumulator(&site, class).cloned(),
                maintenance.clone(),
                derivation.clone(),
                algorithm,
            )?;
            fleet.push((site.clone(), maintainer));
        }
    }
    Ok(fleet)
}

/// [`fleet_from_catalog`] over a versioned
/// [`crate::store::CatalogSnapshot`] — the form every
/// [`crate::store::CatalogStore`] load site hands out.
pub fn fleet_from_snapshot(
    snapshot: &crate::store::CatalogSnapshot,
    maintenance: crate::maintenance::MaintenanceConfig,
    derivation: crate::derive::DerivationConfig,
    algorithm: crate::states::StateAlgorithm,
    site_filter: impl Fn(&SiteId) -> bool,
) -> Result<Vec<(SiteId, ModelMaintainer)>, crate::CoreError> {
    fleet_from_catalog(
        &snapshot.catalog,
        maintenance,
        derivation,
        algorithm,
        site_filter,
    )
}

/// Prices one queued request against the registry. Every failure is a
/// per-line message, never a panic or an abort.
fn serve_one<F>(
    registry: &ModelRegistry,
    make_agent: &F,
    q: &QueuedRequest,
    degrade_factor: f64,
    root_seed: u64,
    correction: Option<&CorrectionLedger>,
) -> Result<ServedAnswer, String>
where
    F: Fn(&SiteId, u64) -> Option<MdbsAgent>,
{
    let mut agent = make_agent(&q.site, split_stream(root_seed, q.lineno as u64))
        .ok_or_else(|| format!("unknown site `{}`", q.site))?;
    apply_degradation(&mut agent, degrade_factor)?;
    let schema = agent.catalog().clone();
    let query = parse_query(&schema, &q.sql).map_err(|e| e.to_string())?;
    let class =
        classify(&schema, &query).ok_or_else(|| "query cannot be classified".to_string())?;
    agent.tick();
    let probe = agent.probe();
    match registry.estimate(&EstimateQuery {
        site: &q.site,
        schema: &schema,
        query: &query,
        probe_cost: probe,
        correction,
    }) {
        Some(detail) => Ok(ServedAnswer::Estimate {
            class,
            probe,
            detail,
        }),
        None => Ok(ServedAnswer::NoModel { class }),
    }
}

/// Executes one observation event: estimate, run, package the feedback.
#[allow(clippy::too_many_arguments)]
fn observe_one<F>(
    registry: &ModelRegistry,
    make_agent: &F,
    site: &SiteId,
    sql: &str,
    degrade_factor: f64,
    root_seed: u64,
    lineno: usize,
    correction: Option<&CorrectionLedger>,
) -> Result<ObservedSample, String>
where
    F: Fn(&SiteId, u64) -> Option<MdbsAgent>,
{
    let mut agent = make_agent(site, split_stream(root_seed, lineno as u64))
        .ok_or_else(|| format!("unknown site `{site}`"))?;
    apply_degradation(&mut agent, degrade_factor)?;
    let schema = agent.catalog().clone();
    let query = parse_query(&schema, sql).map_err(|e| e.to_string())?;
    let class =
        classify(&schema, &query).ok_or_else(|| "query cannot be classified".to_string())?;
    let family: VariableFamily = class.family();
    let x = family
        .extract(&schema, &query)
        .ok_or_else(|| "explanatory variables cannot be extracted".to_string())?;
    agent.tick();
    let probe = agent.probe();
    let estimate = registry.estimate(&EstimateQuery {
        site,
        schema: &schema,
        query: &query,
        probe_cost: probe,
        correction,
    });
    let observed = agent.run(&query).map_err(|e| e.to_string())?.cost_s;
    Ok(ObservedSample {
        class,
        probe,
        observed,
        estimate,
        x,
    })
}

/// Applies a site's cumulative durable I/O degradation to a fresh agent.
fn apply_degradation(agent: &mut MdbsAgent, factor: f64) -> Result<(), String> {
    if (factor - 1.0).abs() > f64::EPSILON {
        agent
            .apply_event(&EnvironmentEvent::DiskReplacement {
                io_cost_factor: factor,
            })
            .map_err(|e| e.to_string())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_parses_all_three_event_kinds() {
        let trace = RequestTrace::parse(
            "# serve-loop trace\n\
             @0.0 request oracle select a1 from R2 where a2 < 100\n\
             \n\
             @0.5 observe oracle select a1 from R2 where a2 < 100\n\
             @1.0 degrade oracle 4.0\n",
        );
        assert!(trace.errors.is_empty(), "{:?}", trace.errors);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.events[0].lineno, 2);
        assert!(matches!(trace.events[0].event, TraceEvent::Request { .. }));
        assert!(matches!(trace.events[1].event, TraceEvent::Observe { .. }));
        assert!(matches!(
            trace.events[2].event,
            TraceEvent::Degrade { factor, .. } if factor == 4.0
        ));
    }

    #[test]
    fn bad_trace_lines_are_collected_not_fatal() {
        let trace = RequestTrace::parse(
            "@0.0 request oracle select a1 from R2 where a2 < 100\n\
             no-at-prefix request oracle select a1 from R2\n\
             @abc request oracle select a1 from R2\n\
             @0.5 frobnicate oracle select a1 from R2\n\
             @0.6 request oracle\n\
             @0.7 degrade oracle -2\n\
             @1.0 request oracle select a1 from R2 where a2 < 50\n\
             @0.2 request oracle select a1 from R2 where a2 < 50\n",
        );
        assert_eq!(trace.len(), 2, "lines 1 and 7 are well-formed");
        assert_eq!(trace.errors.len(), 6);
        let messages: Vec<&str> = trace.errors.iter().map(|(_, m)| m.as_str()).collect();
        assert!(messages.iter().any(|m| m.contains("expected `@TIME")));
        assert!(messages.iter().any(|m| m.contains("bad timestamp")));
        assert!(messages.iter().any(|m| m.contains("unknown event kind")));
        assert!(messages.iter().any(|m| m.contains("goes backwards")));
        assert!(messages.iter().any(|m| m.contains("degrade factor")));
    }

    #[test]
    fn trace_timestamps_must_not_regress_but_may_tie() {
        let trace = RequestTrace::parse(
            "@1.0 request oracle select a1 from R2 where a2 < 100\n\
             @1.0 request oracle select a1 from R2 where a2 < 200\n",
        );
        assert_eq!(trace.len(), 2);
        assert!(trace.errors.is_empty());
    }

    #[test]
    fn serve_config_validation_clamps_degenerate_knobs() {
        let v = ServeConfig {
            queue_capacity: 0,
            batch_max: 0,
            batch_delay_s: -1.0,
            service_cost_s: -1.0,
            deadline_s: -1.0,
            refit_threshold: 0,
            workers: Some(3),
            heartbeat_s: -1.0,
            flight_capacity: 0,
            correction: true,
            correction_ewma_alpha: 7.0,
            correction_saturation: -0.5,
            ledger_max_cells: 0,
        }
        .clamped();
        assert_eq!(v.queue_capacity, 1);
        assert_eq!(v.batch_max, 1);
        assert_eq!(v.batch_delay_s, 0.0);
        assert_eq!(v.service_cost_s, 0.0);
        assert_eq!(v.deadline_s, 0.0);
        assert_eq!(v.refit_threshold, 1);
        assert_eq!(v.workers, Some(3));
        assert_eq!(v.heartbeat_s, 0.0);
        assert_eq!(v.flight_capacity, 0, "capacity 0 = disabled, not clamped");
        assert!(v.correction, "the toggle is never clamped away");
        assert_eq!(v.correction_ewma_alpha, 1.0);
        assert_eq!(v.correction_saturation, 1e-6);
        assert_eq!(v.ledger_max_cells, 1);
        assert_eq!(
            ServeConfig {
                heartbeat_s: f64::NAN,
                ..ServeConfig::default()
            }
            .clamped()
            .heartbeat_s,
            0.0
        );
        let sane = ServeConfig::default();
        assert_eq!(sane.clone().clamped(), sane);
    }

    #[test]
    fn serve_config_builder_accepts_sane_and_rejects_degenerate() {
        let built = ServeConfig::builder()
            .queue_capacity(4)
            .batch_max(2)
            .batch_delay_s(0.05)
            .service_cost_s(0.2)
            .deadline_s(0.5)
            .refit_threshold(20)
            .workers(Some(2))
            .heartbeat_s(10.0)
            .flight_capacity(64)
            .correction(true)
            .correction_ewma_alpha(0.5)
            .correction_saturation(0.4)
            .ledger_max_cells(128)
            .build()
            .expect("sane knobs build");
        assert_eq!(built.queue_capacity, 4);
        assert!(built.correction);
        assert_eq!(built.correction_ewma_alpha, 0.5);
        assert_eq!(built.ledger_max_cells, 128);
        // Defaults alone always build, with correction off.
        let d = ServeConfig::builder().build().expect("defaults build");
        assert_eq!(d, ServeConfig::default());
        assert!(!d.correction, "correction is opt-in");
        // Degenerate knobs are errors, not silent clamps.
        for (name, b) in [
            ("queue", ServeConfig::builder().queue_capacity(0)),
            ("batch", ServeConfig::builder().batch_max(0)),
            ("delay", ServeConfig::builder().batch_delay_s(-1.0)),
            ("service", ServeConfig::builder().service_cost_s(f64::NAN)),
            ("deadline", ServeConfig::builder().deadline_s(-0.1)),
            ("refit", ServeConfig::builder().refit_threshold(0)),
            ("heartbeat", ServeConfig::builder().heartbeat_s(-1.0)),
            ("alpha0", ServeConfig::builder().correction_ewma_alpha(0.0)),
            ("alpha2", ServeConfig::builder().correction_ewma_alpha(2.0)),
            (
                "saturation",
                ServeConfig::builder().correction_saturation(0.0),
            ),
            ("cells", ServeConfig::builder().ledger_max_cells(0)),
        ] {
            assert!(
                matches!(b.build(), Err(crate::CoreError::Degenerate(_))),
                "{name} must be rejected"
            );
        }
    }

    #[test]
    fn trace_ids_are_unique_and_seed_stable() {
        let ids: Vec<String> = (1..=500).map(|l| mint_trace_id(9, l)).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "trace ids must be unique per line");
        // A pure function of (seed, lineno): stable across calls, distinct
        // across seeds.
        assert_eq!(mint_trace_id(9, 42), mint_trace_id(9, 42));
        assert_ne!(mint_trace_id(9, 42), mint_trace_id(10, 42));
    }

    #[test]
    fn empty_report_json_is_well_formed() {
        let report = ServeReport {
            rendered: String::new(),
            requests: 0,
            answered: 0,
            no_model: 0,
            errors: 0,
            shed_queue_full: 0,
            shed_deadline: 0,
            batches: 0,
            max_queue_depth: 0,
            observations: 0,
            incremental_refits: 0,
            rederivations: 0,
            virtual_makespan_s: 0.0,
            latency_p50_s: 0.0,
            latency_p95_s: 0.0,
            latency_p99_s: 0.0,
            heartbeats: 0,
            corrections_applied: 0,
            correction_escalations: 0,
            ledger_p50_abs_rel_err: 0.0,
            ledger_p95_abs_rel_err: 0.0,
            ledger_evictions: 0,
            ledger: Vec::new(),
        };
        assert_eq!(report.shed_fraction(), 0.0);
        let rendered = report.to_json().render();
        let parsed = mdbs_obs::json::parse(&rendered).expect("report json parses");
        assert_eq!(parsed.get("requests").and_then(Json::as_i64), Some(0));
        assert!(matches!(parsed.get("ledger"), Some(Json::Arr(a)) if a.is_empty()));
    }
}
