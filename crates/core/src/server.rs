//! A long-lived estimation server over [`ModelRegistry`] snapshots.
//!
//! The paper's premise is a *dynamic* multidatabase environment: contention
//! shifts under live traffic and the cost models must be revised while
//! estimates keep flowing. The one-shot `serve` batch answers a file and
//! exits; this module is the persistent version (ROADMAP item 1):
//!
//! * an **admission queue + micro-batching front-end** — estimation
//!   requests enter a bounded queue and are drained in small batches onto
//!   the scoped-thread [`pool`], each request priced against an immutable
//!   [`ModelRegistry`] `Arc` snapshot, so serving never blocks behind
//!   maintenance;
//! * a **background maintenance loop** — observed execution costs are
//!   folded through [`ModelMaintainer::observe`]; enough fresh evidence
//!   triggers [`ModelMaintainer::refit_incremental`] (O(k³), no rescan) and
//!   a tripped drift monitor triggers [`rederive_drifted`] on the pool —
//!   either way the fresh model is *published* as a new registry snapshot
//!   and readers switch over atomically;
//! * explicit **backpressure** — the queue is bounded (arrivals beyond
//!   capacity are shed deterministically) and queued requests past their
//!   deadline are shed at dispatch time; queue depth and shed counts are
//!   first-class telemetry.
//!
//! ## Virtual time
//!
//! The loop runs on a deterministic virtual-time driver: every request,
//! observation and environment change arrives as a timestamped line of a
//! [`RequestTrace`], and all queueing/batching/shedding decisions are pure
//! functions of those timestamps and the [`ServeConfig`] — no wall clock on
//! any decision path (per the `mdbs-lint` policy). A scripted trace
//! therefore replays **byte-identically at any worker count**: batches go
//! to the pool, but the pool returns results in job order and every
//! per-line agent is seeded by `split_stream(seed, lineno)`. Latency is
//! measured in virtual seconds (completion minus arrival), which makes tail
//! latency itself reproducible.
//!
//! Service is modelled as a serial backend: a dispatched batch occupies the
//! server for `service_cost_s × batch_len` virtual seconds, during which
//! arrivals keep queueing (and can overflow). This is what produces real
//! backpressure dynamics — bursts fill the queue, the shed policy kicks in,
//! and the depth/latency histograms record it — while staying replayable.

use crate::catalog::SiteId;
use crate::classes::{classify, QueryClass};
use crate::maintenance::{rederive_drifted, ModelMaintainer};
use crate::observation::Observation;
use crate::pipeline::PipelineCtx;
use crate::pool;
use crate::registry::ModelRegistry;
use crate::validate::TestPoint;
use crate::variables::VariableFamily;
use mdbs_sim::events::EnvironmentEvent;
use mdbs_sim::sql::parse_query;
use mdbs_sim::MdbsAgent;
use mdbs_stats::rng::split_stream;
use std::collections::{BTreeMap, VecDeque};

/// Knobs of the serving loop. All times are virtual seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Admission-queue capacity; arrivals beyond it are shed (queue-full).
    pub queue_capacity: usize,
    /// Largest micro-batch dispatched to the pool at once.
    pub batch_max: usize,
    /// How long a non-full batch waits for more arrivals before dispatch.
    pub batch_delay_s: f64,
    /// Virtual service cost per request (a batch of n occupies the server
    /// for `n × service_cost_s`).
    pub service_cost_s: f64,
    /// Requests queued longer than this are shed at dispatch time.
    pub deadline_s: f64,
    /// Pending observations per model before an incremental refit runs.
    pub refit_threshold: usize,
    /// Worker threads per dispatched batch (`None` → available
    /// parallelism). Never affects the report or stripped telemetry.
    pub workers: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            batch_max: 8,
            batch_delay_s: 0.05,
            service_cost_s: 0.01,
            deadline_s: 2.0,
            refit_threshold: 24,
            workers: None,
        }
    }
}

impl ServeConfig {
    /// Clamps degenerate values (zero capacity/batch/threshold, negative
    /// times) to the smallest sane ones, mirroring
    /// [`crate::maintenance::MaintenanceConfig::validated`].
    pub fn validated(self) -> Self {
        ServeConfig {
            queue_capacity: self.queue_capacity.max(1),
            batch_max: self.batch_max.max(1),
            batch_delay_s: self.batch_delay_s.max(0.0),
            service_cost_s: self.service_cost_s.max(0.0),
            deadline_s: self.deadline_s.max(0.0),
            refit_threshold: self.refit_threshold.max(1),
            workers: self.workers,
        }
    }
}

/// One event of a request trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// An estimation request: price `sql` at `site`.
    Request {
        /// Target site.
        site: SiteId,
        /// The SQL text to price.
        sql: String,
    },
    /// Execution feedback: run `sql` at `site`, compare the observed cost
    /// against the served estimate, feed the model's maintainer.
    Observe {
        /// Target site.
        site: SiteId,
        /// The SQL text to execute.
        sql: String,
    },
    /// A durable environment change at `site`: page-I/O costs multiplied by
    /// `factor` (> 1 = slower disks). Stale models drift until maintenance
    /// rebuilds them against the changed site.
    Degrade {
        /// Target site.
        site: SiteId,
        /// Multiplicative I/O cost factor (must be finite and positive).
        factor: f64,
    },
}

/// A trace event with its virtual arrival time and source line.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedEvent {
    /// Virtual arrival time (seconds).
    pub at_s: f64,
    /// 1-based line number in the trace file.
    pub lineno: usize,
    /// What arrives.
    pub event: TraceEvent,
}

/// A parsed request/observation trace.
///
/// Malformed lines never abort the parse: they are collected in
/// [`RequestTrace::errors`] with their line numbers and reported inline by
/// the server, exactly like the batch `serve` command's per-line errors —
/// one bad line must not drop the trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RequestTrace {
    /// Well-formed events, in file order (timestamps are non-decreasing).
    pub events: Vec<TracedEvent>,
    /// `(lineno, message)` for every malformed line.
    pub errors: Vec<(usize, String)>,
}

impl RequestTrace {
    /// Parses trace text. Each non-blank, non-`#` line is
    ///
    /// ```text
    /// @TIME request SITE SQL...
    /// @TIME observe SITE SQL...
    /// @TIME degrade SITE FACTOR
    /// ```
    ///
    /// with `TIME` in non-decreasing virtual seconds. Bad lines land in
    /// [`RequestTrace::errors`] and do not advance the clock.
    pub fn parse(text: &str) -> RequestTrace {
        let mut trace = RequestTrace::default();
        let mut last_at = 0.0f64;
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match parse_trace_line(line, last_at) {
                Ok((at_s, event)) => {
                    last_at = at_s;
                    trace.events.push(TracedEvent {
                        at_s,
                        lineno,
                        event,
                    });
                }
                Err(msg) => trace.errors.push((lineno, msg)),
            }
        }
        trace
    }

    /// Number of well-formed events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no well-formed event was parsed.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

fn parse_trace_line(line: &str, last_at: f64) -> Result<(f64, TraceEvent), String> {
    let rest = line
        .strip_prefix('@')
        .ok_or_else(|| "expected `@TIME request|observe|degrade SITE ...`".to_string())?;
    let (time_word, rest) = rest
        .split_once(char::is_whitespace)
        .ok_or_else(|| "expected an event after the timestamp".to_string())?;
    let at_s: f64 = time_word
        .parse()
        .map_err(|_| format!("bad timestamp `{time_word}`"))?;
    if !at_s.is_finite() || at_s < 0.0 {
        return Err(format!(
            "timestamp must be finite and >= 0, got `{time_word}`"
        ));
    }
    if at_s < last_at {
        return Err(format!(
            "timestamp {at_s} goes backwards (previous event at {last_at})"
        ));
    }
    let (kind, rest) = rest
        .trim()
        .split_once(char::is_whitespace)
        .ok_or_else(|| "expected `SITE ...` after the event kind".to_string())?;
    let rest = rest.trim();
    let event = match kind {
        "request" | "observe" => {
            let (site, sql) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| format!("expected `SITE SQL...` after `{kind}`"))?;
            let sql = sql.trim();
            if sql.is_empty() {
                return Err(format!("empty SQL after `{kind} {site}`"));
            }
            if kind == "request" {
                TraceEvent::Request {
                    site: site.into(),
                    sql: sql.to_string(),
                }
            } else {
                TraceEvent::Observe {
                    site: site.into(),
                    sql: sql.to_string(),
                }
            }
        }
        "degrade" => {
            let (site, factor_word) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| "expected `SITE FACTOR` after `degrade`".to_string())?;
            let factor: f64 = factor_word
                .trim()
                .parse()
                .map_err(|_| format!("bad degrade factor `{}`", factor_word.trim()))?;
            if !factor.is_finite() || factor <= 0.0 {
                return Err(format!(
                    "degrade factor must be finite and > 0, got {factor}"
                ));
            }
            TraceEvent::Degrade {
                site: site.into(),
                factor,
            }
        }
        other => return Err(format!("unknown event kind `{other}`")),
    };
    Ok((at_s, event))
}

/// What one trace replay did, with the deterministic rendered report.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// The full human-readable report (summary + per-line outcomes), a pure
    /// function of trace, seed and config — byte-identical at any worker
    /// count.
    pub rendered: String,
    /// Estimation requests admitted or shed.
    pub requests: usize,
    /// Requests answered with an estimate.
    pub answered: usize,
    /// Requests whose class had no registered model.
    pub no_model: usize,
    /// Malformed trace lines plus per-line processing failures.
    pub errors: usize,
    /// Requests shed because the queue was full at arrival.
    pub shed_queue_full: usize,
    /// Requests shed because they out-waited the deadline.
    pub shed_deadline: usize,
    /// Micro-batches dispatched.
    pub batches: usize,
    /// Largest queue depth observed.
    pub max_queue_depth: usize,
    /// Observation events processed.
    pub observations: usize,
    /// Incremental refits published.
    pub incremental_refits: usize,
    /// Drift-triggered rederivations published.
    pub rederivations: usize,
    /// Virtual time at which the last work finished.
    pub virtual_makespan_s: f64,
    /// Median request latency in virtual seconds (0 when nothing served).
    pub latency_p50_s: f64,
    /// 95th-percentile request latency in virtual seconds.
    pub latency_p95_s: f64,
}

impl ServeReport {
    /// Sustained throughput: answered requests per virtual second.
    pub fn throughput_per_virtual_s(&self) -> f64 {
        if self.virtual_makespan_s > 0.0 {
            self.answered as f64 / self.virtual_makespan_s
        } else {
            0.0
        }
    }
}

/// A request sitting in the admission queue.
#[derive(Debug, Clone)]
struct QueuedRequest {
    lineno: usize,
    arrived_s: f64,
    site: SiteId,
    sql: String,
}

/// The outcome of pricing one request against a registry snapshot.
enum ServedAnswer {
    Estimate {
        class: QueryClass,
        probe: f64,
        estimate: f64,
        version: u64,
    },
    NoModel {
        class: QueryClass,
    },
}

/// One executed observation, before it is routed to a maintainer.
struct ObservedSample {
    class: QueryClass,
    probe: f64,
    observed: f64,
    estimate: Option<(f64, u64)>,
    x: Vec<f64>,
}

/// The long-lived estimation server: a registry serving the hot path, a
/// fleet of maintainers keeping its models fresh, and the loop config.
#[derive(Debug)]
pub struct EstimationServer {
    /// The concurrent registry requests are priced against.
    pub registry: ModelRegistry,
    fleet: Vec<(SiteId, ModelMaintainer)>,
    config: ServeConfig,
}

impl EstimationServer {
    /// A server over `registry` with the given maintainer fleet.
    ///
    /// Invariant: every fleet site must be constructible by the `make_agent`
    /// closure later passed to [`EstimationServer::run`] (rederivation
    /// builds agents for drifted fleet members).
    pub fn new(
        registry: ModelRegistry,
        fleet: Vec<(SiteId, ModelMaintainer)>,
        config: ServeConfig,
    ) -> Self {
        EstimationServer {
            registry,
            fleet,
            config: config.validated(),
        }
    }

    /// The maintainer fleet (site, maintainer) in construction order.
    pub fn fleet(&self) -> &[(SiteId, ModelMaintainer)] {
        &self.fleet
    }

    /// Replays a request/observation trace through the serving loop.
    ///
    /// `make_agent` builds a deterministic per-line site agent from a seed
    /// split off `ctx.seed` by the trace line number; it returns `None` for
    /// sites it cannot build (reported as a per-line error, never fatal).
    /// The returned report and the deterministic part of `ctx.telemetry`
    /// are pure functions of `(trace, ctx.seed, config)` — independent of
    /// `config.workers`.
    pub fn run<F>(
        &mut self,
        trace: &RequestTrace,
        make_agent: F,
        ctx: &mut PipelineCtx,
    ) -> ServeReport
    where
        F: Fn(&SiteId, u64) -> Option<MdbsAgent> + Sync,
    {
        let EstimationServer {
            registry,
            fleet,
            config,
        } = self;
        let registry: &ModelRegistry = registry;
        let config = config.clone();
        let root_seed = ctx.seed;
        let span = ctx.telemetry.begin_span("serve.loop");
        ctx.telemetry
            .field(span, "events", trace.events.len() as u64);
        ctx.telemetry.field(span, "fleet", fleet.len() as u64);

        let mut queue: VecDeque<QueuedRequest> = VecDeque::new();
        let mut degradation: BTreeMap<SiteId, f64> = BTreeMap::new();
        let mut pending: Vec<Vec<Observation>> = vec![Vec::new(); fleet.len()];
        let mut lines: Vec<String> = Vec::new();
        let mut latencies: Vec<f64> = Vec::new();
        let mut report = ServeReport {
            rendered: String::new(),
            requests: 0,
            answered: 0,
            no_model: 0,
            errors: 0,
            shed_queue_full: 0,
            shed_deadline: 0,
            batches: 0,
            max_queue_depth: 0,
            observations: 0,
            incremental_refits: 0,
            rederivations: 0,
            virtual_makespan_s: 0.0,
            latency_p50_s: 0.0,
            latency_p95_s: 0.0,
        };
        let (mut pool_jobs, mut pool_steals, mut pool_workers) = (0usize, 0u64, 0usize);

        // Malformed trace lines are reported up front; they carry no
        // timestamp that survived parsing, so they cannot be interleaved.
        for (lineno, msg) in &trace.errors {
            report.errors += 1;
            ctx.telemetry.inc("serve.line_errors", 1);
            lines.push(format!("  {lineno:>3} ERROR: {msg}"));
        }

        let mut clock = 0.0f64;
        let mut busy_until = 0.0f64;
        let mut events = trace.events.iter().peekable();
        loop {
            // When could the server next start a batch?
            let trigger = if queue.is_empty() {
                None
            } else if queue.len() >= config.batch_max {
                Some(busy_until.max(clock))
            } else {
                let head_arrived = queue.front().expect("non-empty").arrived_s;
                Some(busy_until.max(head_arrived + config.batch_delay_s))
            };
            let next_event_at = events.peek().map(|e| e.at_s);
            // Dispatch when the batch trigger fires no later than the next
            // arrival (ties dispatch first); otherwise admit the arrival.
            let dispatch = match (trigger, next_event_at) {
                (Some(t_batch), Some(t_event)) => t_batch <= t_event,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if dispatch {
                let t_batch = trigger.expect("dispatch implies a trigger");
                clock = clock.max(t_batch);
                // Deadline shed: queued requests that out-waited their
                // deadline are answered with a shed, not served late.
                while let Some(front) = queue.front() {
                    if clock - front.arrived_s > config.deadline_s {
                        let q = queue.pop_front().expect("front exists");
                        report.shed_deadline += 1;
                        ctx.telemetry.inc("serve.shed.deadline", 1);
                        lines.push(format!(
                            "  {:>3} @{:.3} SHED (deadline: waited {:.3}s)",
                            q.lineno,
                            clock,
                            clock - q.arrived_s
                        ));
                    } else {
                        break;
                    }
                }
                let n = queue.len().min(config.batch_max);
                if n == 0 {
                    continue;
                }
                let batch: Vec<(QueuedRequest, f64)> = queue
                    .drain(..n)
                    .map(|q| {
                        let factor = degradation.get(&q.site).copied().unwrap_or(1.0);
                        (q, factor)
                    })
                    .collect();
                let completion = clock + config.service_cost_s * batch.len() as f64;
                busy_until = completion;
                report.batches += 1;
                ctx.telemetry.inc("serve.batches", 1);
                ctx.telemetry
                    .observe("serve.batch_size", batch.len() as f64);
                let workers = pool::effective_workers(config.workers, batch.len());
                let make_agent = &make_agent;
                let (results, pool_report) =
                    pool::run_jobs(batch, workers, move |_, (q, factor)| {
                        let outcome = serve_one(registry, make_agent, &q, factor, root_seed);
                        (q, outcome)
                    });
                pool_jobs += pool_report.jobs_completed;
                pool_steals += pool_report.steals;
                pool_workers = pool_workers.max(pool_report.workers);
                for (q, outcome) in results {
                    let latency = completion - q.arrived_s;
                    match outcome {
                        Ok(ServedAnswer::Estimate {
                            class,
                            probe,
                            estimate,
                            version,
                        }) => {
                            report.answered += 1;
                            ctx.telemetry.inc("serve.answered", 1);
                            latencies.push(latency);
                            ctx.telemetry.observe("serve.latency_virtual_s", latency);
                            lines.push(format!(
                                "  {:>3} @{:.3}->@{:.3} ({:.3}s) {} {}: probe {:.3}s -> estimate {:.2}s [v{}]",
                                q.lineno,
                                q.arrived_s,
                                completion,
                                latency,
                                q.site,
                                class.label(),
                                probe,
                                estimate,
                                version
                            ));
                        }
                        Ok(ServedAnswer::NoModel { class }) => {
                            report.no_model += 1;
                            ctx.telemetry.inc("serve.no_model", 1);
                            latencies.push(latency);
                            ctx.telemetry.observe("serve.latency_virtual_s", latency);
                            lines.push(format!(
                                "  {:>3} @{:.3}->@{:.3} ({:.3}s) {} {}: no model in registry",
                                q.lineno,
                                q.arrived_s,
                                completion,
                                latency,
                                q.site,
                                class.label()
                            ));
                        }
                        Err(msg) => {
                            report.errors += 1;
                            ctx.telemetry.inc("serve.line_errors", 1);
                            lines.push(format!("  {:>3} ERROR: {msg}", q.lineno));
                        }
                    }
                }
                continue;
            }
            let ev = events.next().expect("peeked");
            clock = clock.max(ev.at_s);
            match &ev.event {
                TraceEvent::Request { site, sql } => {
                    report.requests += 1;
                    ctx.telemetry.inc("serve.requests", 1);
                    if queue.len() >= config.queue_capacity {
                        report.shed_queue_full += 1;
                        ctx.telemetry.inc("serve.shed.queue_full", 1);
                        lines.push(format!(
                            "  {:>3} @{:.3} SHED (queue full at {})",
                            ev.lineno,
                            ev.at_s,
                            queue.len()
                        ));
                    } else {
                        queue.push_back(QueuedRequest {
                            lineno: ev.lineno,
                            arrived_s: ev.at_s,
                            site: site.clone(),
                            sql: sql.clone(),
                        });
                        report.max_queue_depth = report.max_queue_depth.max(queue.len());
                        ctx.telemetry
                            .observe("serve.queue_depth", queue.len() as f64);
                    }
                }
                TraceEvent::Degrade { site, factor } => {
                    let cumulative = degradation.entry(site.clone()).or_insert(1.0);
                    *cumulative *= factor;
                    ctx.telemetry.inc("serve.degrades", 1);
                    lines.push(format!(
                        "  {:>3} @{:.3} degrade {} x{:.2} (cumulative x{:.2})",
                        ev.lineno, ev.at_s, site, factor, cumulative
                    ));
                }
                TraceEvent::Observe { site, sql } => {
                    report.observations += 1;
                    ctx.telemetry.inc("serve.observations", 1);
                    let factor = degradation.get(site).copied().unwrap_or(1.0);
                    let sample = observe_one(
                        registry,
                        &make_agent,
                        site,
                        sql,
                        factor,
                        root_seed,
                        ev.lineno,
                    );
                    let sample = match sample {
                        Ok(s) => s,
                        Err(msg) => {
                            report.errors += 1;
                            ctx.telemetry.inc("serve.line_errors", 1);
                            lines.push(format!("  {:>3} ERROR: {msg}", ev.lineno));
                            continue;
                        }
                    };
                    let idx = fleet
                        .iter()
                        .position(|(s, m)| s == site && m.class() == sample.class);
                    let (Some(i), Some((estimate, version))) = (idx, sample.estimate) else {
                        report.no_model += 1;
                        ctx.telemetry.inc("serve.no_model", 1);
                        lines.push(format!(
                            "  {:>3} @{:.3} observe {} {}: no maintained model",
                            ev.lineno,
                            ev.at_s,
                            site,
                            sample.class.label()
                        ));
                        continue;
                    };
                    let good = TestPoint {
                        observed: sample.observed,
                        estimated: estimate,
                        result_card: 0,
                        probe_cost: sample.probe,
                    }
                    .is_good();
                    let drifted = {
                        let (_, maintainer) = &mut fleet[i];
                        let drifted = maintainer.observe(sample.observed, estimate, ctx);
                        pending[i].push(Observation {
                            x: sample.x,
                            cost: sample.observed,
                            probe_cost: sample.probe,
                        });
                        drifted
                    };
                    lines.push(format!(
                        "  {:>3} @{:.3} observe {} {}: observed {:.2}s vs estimate {:.2}s [v{}] ({})",
                        ev.lineno,
                        ev.at_s,
                        site,
                        sample.class.label(),
                        sample.observed,
                        estimate,
                        version,
                        if good { "good" } else { "off" }
                    ));
                    if drifted {
                        // Rebuild every currently-drifted fleet member on
                        // the pool and publish the fresh snapshots; stale
                        // pending observations predate the new models.
                        let drifted_idx: Vec<usize> = fleet
                            .iter()
                            .enumerate()
                            .filter(|(_, (_, m))| m.monitor.drifted())
                            .map(|(j, _)| j)
                            .collect();
                        let degradation = &degradation;
                        let make_agent = &make_agent;
                        let rebuilt = rederive_drifted(
                            fleet,
                            config.workers,
                            |site, _class, env_seed| {
                                let mut agent = make_agent(site, env_seed)
                                    .expect("fleet sites are agent-constructible");
                                let factor = degradation.get(site).copied().unwrap_or(1.0);
                                apply_degradation(&mut agent, factor)
                                    .expect("degrade factors are validated at parse");
                                agent
                            },
                            Some(registry),
                            ctx,
                        );
                        match rebuilt {
                            Ok(n) => {
                                report.rederivations += n;
                                for j in drifted_idx {
                                    pending[j].clear();
                                }
                                lines.push(format!(
                                    "  maintenance @{:.3}: rederived {} drifted model(s) -> registry v{}",
                                    ev.at_s,
                                    n,
                                    registry.version()
                                ));
                            }
                            Err(e) => {
                                ctx.telemetry.inc("maintenance.rederive_failures", 1);
                                lines.push(format!(
                                    "  maintenance @{:.3}: rederivation FAILED ({e}); serving continues",
                                    ev.at_s
                                ));
                            }
                        }
                    } else if pending[i].len() >= config.refit_threshold {
                        // Cheap path: fold the fresh evidence into the
                        // model's sufficient statistics and republish.
                        // Either way the pending batch is consumed — the
                        // accumulator absorbs it even when the re-solve is
                        // deferred for lack of per-state evidence.
                        let batch = std::mem::take(&mut pending[i]);
                        let (site_id, maintainer) = &mut fleet[i];
                        let site_id = site_id.clone();
                        match maintainer.refit_incremental(&site_id, &batch, Some(registry), ctx) {
                            Ok(()) => {
                                report.incremental_refits += 1;
                                lines.push(format!(
                                    "  maintenance @{:.3}: incremental refit {} {} ({} obs) -> registry v{}",
                                    ev.at_s,
                                    site_id,
                                    sample.class.label(),
                                    batch.len(),
                                    registry.version()
                                ));
                            }
                            Err(e) => {
                                ctx.telemetry.inc("maintenance.refit_deferred", 1);
                                lines.push(format!(
                                    "  maintenance @{:.3}: refit deferred ({e}); serving continues",
                                    ev.at_s
                                ));
                            }
                        }
                    }
                }
            }
        }

        report.virtual_makespan_s = clock.max(busy_until);
        (report.latency_p50_s, report.latency_p95_s) = percentiles(&mut latencies);
        ctx.telemetry
            .field(span, "requests", report.requests as u64);
        ctx.telemetry
            .field(span, "answered", report.answered as u64);
        ctx.telemetry.field(
            span,
            "shed",
            (report.shed_queue_full + report.shed_deadline) as u64,
        );
        ctx.telemetry
            .field(span, "observations", report.observations as u64);
        ctx.telemetry
            .field(span, "incremental_refits", report.incremental_refits as u64);
        ctx.telemetry
            .field(span, "rederivations", report.rederivations as u64);
        ctx.telemetry
            .gauge("serve.virtual_makespan_s", report.virtual_makespan_s);
        ctx.telemetry
            .gauge("serve.max_queue_depth", report.max_queue_depth as f64);
        ctx.telemetry.inc("pool.jobs_completed", pool_jobs as u64);
        ctx.telemetry.inc("pool.sched.steals", pool_steals);
        ctx.telemetry
            .gauge("pool.sched.workers", pool_workers as f64);
        registry.fold_metrics(&mut ctx.telemetry);
        ctx.telemetry.end_span(span);

        let mut rendered = format!(
            "serve loop: {} request(s) — {} answered, {} no-model, {} shed ({} queue-full, {} deadline), {} error line(s)\n",
            report.requests,
            report.answered,
            report.no_model,
            report.shed_queue_full + report.shed_deadline,
            report.shed_queue_full,
            report.shed_deadline,
            report.errors
        );
        rendered.push_str(&format!(
            "maintenance: {} observation(s), {} incremental refit(s), {} rederivation(s); registry v{} ({} model(s))\n",
            report.observations,
            report.incremental_refits,
            report.rederivations,
            registry.version(),
            registry.len()
        ));
        rendered.push_str(&format!(
            "virtual time: makespan {:.3}s, latency p50 {:.3}s p95 {:.3}s, peak queue {}, {} batch(es)\n",
            report.virtual_makespan_s,
            report.latency_p50_s,
            report.latency_p95_s,
            report.max_queue_depth,
            report.batches
        ));
        for line in &lines {
            rendered.push_str(line);
            rendered.push('\n');
        }
        report.rendered = rendered;
        report
    }
}

/// Builds the maintainer fleet for every catalog model whose site passes
/// `site_filter`, restoring persisted fit accumulators when present so
/// incremental refits resume from the full fitting sample.
pub fn fleet_from_catalog(
    catalog: &crate::catalog::GlobalCatalog,
    maintenance: crate::maintenance::MaintenanceConfig,
    derivation: crate::derive::DerivationConfig,
    algorithm: crate::states::StateAlgorithm,
    site_filter: impl Fn(&SiteId) -> bool,
) -> Result<Vec<(SiteId, ModelMaintainer)>, crate::CoreError> {
    let mut fleet = Vec::new();
    for site in catalog.sites() {
        if !site_filter(&site) {
            continue;
        }
        for class in catalog.classes_for(&site) {
            let model = catalog.model(&site, class).expect("listed by the catalog");
            let maintainer = ModelMaintainer::from_model(
                class,
                model.clone(),
                catalog.accumulator(&site, class).cloned(),
                maintenance.clone(),
                derivation.clone(),
                algorithm,
            )?;
            fleet.push((site.clone(), maintainer));
        }
    }
    Ok(fleet)
}

/// Prices one queued request against the registry. Every failure is a
/// per-line message, never a panic or an abort.
fn serve_one<F>(
    registry: &ModelRegistry,
    make_agent: &F,
    q: &QueuedRequest,
    degrade_factor: f64,
    root_seed: u64,
) -> Result<ServedAnswer, String>
where
    F: Fn(&SiteId, u64) -> Option<MdbsAgent>,
{
    let mut agent = make_agent(&q.site, split_stream(root_seed, q.lineno as u64))
        .ok_or_else(|| format!("unknown site `{}`", q.site))?;
    apply_degradation(&mut agent, degrade_factor)?;
    let schema = agent.catalog().clone();
    let query = parse_query(&schema, &q.sql).map_err(|e| e.to_string())?;
    let class =
        classify(&schema, &query).ok_or_else(|| "query cannot be classified".to_string())?;
    agent.tick();
    let probe = agent.probe();
    match registry.estimate_with_version(&q.site, &schema, &query, probe) {
        Some((estimate, version)) => Ok(ServedAnswer::Estimate {
            class,
            probe,
            estimate,
            version,
        }),
        None => Ok(ServedAnswer::NoModel { class }),
    }
}

/// Executes one observation event: estimate, run, package the feedback.
fn observe_one<F>(
    registry: &ModelRegistry,
    make_agent: &F,
    site: &SiteId,
    sql: &str,
    degrade_factor: f64,
    root_seed: u64,
    lineno: usize,
) -> Result<ObservedSample, String>
where
    F: Fn(&SiteId, u64) -> Option<MdbsAgent>,
{
    let mut agent = make_agent(site, split_stream(root_seed, lineno as u64))
        .ok_or_else(|| format!("unknown site `{site}`"))?;
    apply_degradation(&mut agent, degrade_factor)?;
    let schema = agent.catalog().clone();
    let query = parse_query(&schema, sql).map_err(|e| e.to_string())?;
    let class =
        classify(&schema, &query).ok_or_else(|| "query cannot be classified".to_string())?;
    let family: VariableFamily = class.family();
    let x = family
        .extract(&schema, &query)
        .ok_or_else(|| "explanatory variables cannot be extracted".to_string())?;
    agent.tick();
    let probe = agent.probe();
    let estimate = registry.estimate_with_version(site, &schema, &query, probe);
    let observed = agent.run(&query).map_err(|e| e.to_string())?.cost_s;
    Ok(ObservedSample {
        class,
        probe,
        observed,
        estimate,
        x,
    })
}

/// Applies a site's cumulative durable I/O degradation to a fresh agent.
fn apply_degradation(agent: &mut MdbsAgent, factor: f64) -> Result<(), String> {
    if (factor - 1.0).abs() > f64::EPSILON {
        agent
            .apply_event(&EnvironmentEvent::DiskReplacement {
                io_cost_factor: factor,
            })
            .map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Nearest-rank p50/p95 of a latency sample; `(0, 0)` when empty.
fn percentiles(samples: &mut [f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let p50 = samples[samples.len() / 2];
    let p95_idx = ((samples.len() as f64 * 0.95).ceil() as usize).clamp(1, samples.len()) - 1;
    (p50, samples[p95_idx])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_parses_all_three_event_kinds() {
        let trace = RequestTrace::parse(
            "# serve-loop trace\n\
             @0.0 request oracle select a1 from R2 where a2 < 100\n\
             \n\
             @0.5 observe oracle select a1 from R2 where a2 < 100\n\
             @1.0 degrade oracle 4.0\n",
        );
        assert!(trace.errors.is_empty(), "{:?}", trace.errors);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.events[0].lineno, 2);
        assert!(matches!(trace.events[0].event, TraceEvent::Request { .. }));
        assert!(matches!(trace.events[1].event, TraceEvent::Observe { .. }));
        assert!(matches!(
            trace.events[2].event,
            TraceEvent::Degrade { factor, .. } if factor == 4.0
        ));
    }

    #[test]
    fn bad_trace_lines_are_collected_not_fatal() {
        let trace = RequestTrace::parse(
            "@0.0 request oracle select a1 from R2 where a2 < 100\n\
             no-at-prefix request oracle select a1 from R2\n\
             @abc request oracle select a1 from R2\n\
             @0.5 frobnicate oracle select a1 from R2\n\
             @0.6 request oracle\n\
             @0.7 degrade oracle -2\n\
             @1.0 request oracle select a1 from R2 where a2 < 50\n\
             @0.2 request oracle select a1 from R2 where a2 < 50\n",
        );
        assert_eq!(trace.len(), 2, "lines 1 and 7 are well-formed");
        assert_eq!(trace.errors.len(), 6);
        let messages: Vec<&str> = trace.errors.iter().map(|(_, m)| m.as_str()).collect();
        assert!(messages.iter().any(|m| m.contains("expected `@TIME")));
        assert!(messages.iter().any(|m| m.contains("bad timestamp")));
        assert!(messages.iter().any(|m| m.contains("unknown event kind")));
        assert!(messages.iter().any(|m| m.contains("goes backwards")));
        assert!(messages.iter().any(|m| m.contains("degrade factor")));
    }

    #[test]
    fn trace_timestamps_must_not_regress_but_may_tie() {
        let trace = RequestTrace::parse(
            "@1.0 request oracle select a1 from R2 where a2 < 100\n\
             @1.0 request oracle select a1 from R2 where a2 < 200\n",
        );
        assert_eq!(trace.len(), 2);
        assert!(trace.errors.is_empty());
    }

    #[test]
    fn serve_config_validation_clamps_degenerate_knobs() {
        let v = ServeConfig {
            queue_capacity: 0,
            batch_max: 0,
            batch_delay_s: -1.0,
            service_cost_s: -1.0,
            deadline_s: -1.0,
            refit_threshold: 0,
            workers: Some(3),
        }
        .validated();
        assert_eq!(v.queue_capacity, 1);
        assert_eq!(v.batch_max, 1);
        assert_eq!(v.batch_delay_s, 0.0);
        assert_eq!(v.service_cost_s, 0.0);
        assert_eq!(v.deadline_s, 0.0);
        assert_eq!(v.refit_threshold, 1);
        assert_eq!(v.workers, Some(3));
        let sane = ServeConfig::default();
        assert_eq!(sane.clone().validated(), sane);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut empty: Vec<f64> = vec![];
        assert_eq!(percentiles(&mut empty), (0.0, 0.0));
        let mut one = vec![2.0];
        assert_eq!(percentiles(&mut one), (2.0, 2.0));
        let mut many: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let (p50, p95) = percentiles(&mut many);
        assert_eq!(p50, 51.0);
        assert_eq!(p95, 95.0);
    }
}
