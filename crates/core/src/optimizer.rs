//! A demonstration global query optimizer.
//!
//! This is the *consumer* of everything else in the crate: "based on the
//! estimated local costs, the global query optimizer chooses a good
//! execution plan for a global query" (paper §1). The optimizer here covers
//! the canonical MDBS decision for a two-site join — *where should the join
//! run?* — by pricing, for each direction:
//!
//! 1. the component unary query that filters the shipped operand at its
//!    home site (estimated with that site's derived cost model),
//! 2. the network transfer of the intermediate result,
//! 3. the join executed at the destination site against the shipped
//!    temporary table (estimated with that site's join cost model).
//!
//! Contention enters through the per-site probing costs supplied by the
//! caller — measured with a real probe or estimated via eq. (2).

use crate::catalog::{GlobalCatalog, SiteId};
use crate::classes::{classify, QueryClass};
use crate::variables::VariableFamily;
use crate::CoreError;
use mdbs_sim::catalog::{ColumnDef, IndexKind, LocalCatalog, TableDef, TableId};
use mdbs_sim::query::{JoinQuery, Predicate, Query, UnaryQuery};
use mdbs_sim::selectivity::unary_sizes;

/// One side of a global join.
#[derive(Debug, Clone)]
pub struct JoinOperand {
    /// The site holding the operand.
    pub site: SiteId,
    /// The operand table at that site.
    pub table: TableId,
    /// Join column index.
    pub join_col: usize,
    /// Local predicates applied before joining.
    pub predicates: Vec<Predicate>,
}

/// A global two-site join query.
#[derive(Debug, Clone)]
pub struct GlobalJoin {
    /// Left operand.
    pub left: JoinOperand,
    /// Right operand.
    pub right: JoinOperand,
}

/// A priced execution plan for a global join.
#[derive(Debug, Clone)]
pub struct PlanEstimate {
    /// Where the join runs.
    pub join_site: SiteId,
    /// Estimated cost of the filtering component query at the shipping
    /// site (seconds).
    pub ship_prepare_cost: f64,
    /// Estimated megabytes shipped.
    pub transfer_mb: f64,
    /// Estimated transfer cost (seconds).
    pub transfer_cost: f64,
    /// Estimated cost of the join at the destination (seconds).
    pub join_cost: f64,
}

impl PlanEstimate {
    /// Total estimated elapsed cost of the plan.
    pub fn total(&self) -> f64 {
        self.ship_prepare_cost + self.transfer_cost + self.join_cost
    }
}

/// The global optimizer: a catalog of cost models plus network parameters.
#[derive(Debug, Clone)]
pub struct GlobalOptimizer {
    /// Derived local cost models.
    pub catalog: GlobalCatalog,
    /// Network transfer cost in seconds per megabyte.
    pub network_s_per_mb: f64,
}

impl GlobalOptimizer {
    /// Creates an optimizer around a populated catalog.
    pub fn new(catalog: GlobalCatalog, network_s_per_mb: f64) -> Self {
        GlobalOptimizer {
            catalog,
            network_s_per_mb,
        }
    }

    /// Enumerates and prices both ship-directions for a global join.
    /// `schemas` and `probes` map each involved site to its schema and its
    /// currently gauged probing cost. Plans that cannot be priced (missing
    /// models) are skipped; the result is sorted cheapest-first.
    pub fn plan_join(
        &self,
        join: &GlobalJoin,
        schemas: &[(SiteId, &LocalCatalog)],
        probes: &[(SiteId, f64)],
    ) -> Result<Vec<PlanEstimate>, CoreError> {
        let schema_of = |site: &SiteId| {
            schemas
                .iter()
                .find(|(s, _)| s == site)
                .map(|(_, c)| *c)
                .ok_or_else(|| CoreError::Agent(format!("no schema for site {site}")))
        };
        let probe_of = |site: &SiteId| {
            probes
                .iter()
                .find(|(s, _)| s == site)
                .map(|(_, p)| *p)
                .ok_or_else(|| CoreError::Agent(format!("no probe cost for site {site}")))
        };
        let mut plans = Vec::new();
        for (shipped, dest) in [(&join.right, &join.left), (&join.left, &join.right)] {
            match self.price_direction(
                shipped,
                dest,
                schema_of(&shipped.site)?,
                schema_of(&dest.site)?,
                probe_of(&shipped.site)?,
                probe_of(&dest.site)?,
            ) {
                Some(p) => plans.push(p),
                None => continue,
            }
        }
        plans.sort_by(|a, b| a.total().partial_cmp(&b.total()).expect("finite totals"));
        Ok(plans)
    }

    /// Prices "filter `shipped` at home, move it, join at `dest`".
    fn price_direction(
        &self,
        shipped: &JoinOperand,
        dest: &JoinOperand,
        shipped_schema: &LocalCatalog,
        dest_schema: &LocalCatalog,
        shipped_probe: f64,
        dest_probe: f64,
    ) -> Option<PlanEstimate> {
        let shipped_table = shipped_schema.table(shipped.table)?;
        // Component 1: the filtering unary query at the shipping site.
        let filter_query = Query::Unary(UnaryQuery {
            table: shipped.table,
            projection: vec![],
            predicates: shipped.predicates.clone(),
            order_by: None,
        });
        let ship_prepare_cost = self
            .catalog
            .estimate(&crate::correction::EstimateQuery::raw(
                &shipped.site,
                shipped_schema,
                &filter_query,
                shipped_probe,
            ))?
            .estimate;
        // Component 2: the network transfer of the intermediate.
        let Query::Unary(ref u) = filter_query else {
            unreachable!("constructed as unary above");
        };
        let shipped_card = unary_sizes(shipped_table, u).result;
        let transfer_mb =
            shipped_card as f64 * shipped_table.tuple_len() as f64 / (1024.0 * 1024.0);
        let transfer_cost = transfer_mb * self.network_s_per_mb;
        // Component 3: the join at the destination against a temporary
        // table (same columns, no indexes, the shipped cardinality).
        let temp = temp_table(shipped_table, shipped_card);
        let mut augmented = dest_schema.clone();
        augmented.add_table(temp.clone());
        let join_query = Query::Join(JoinQuery {
            left: dest.table,
            right: temp.id,
            left_col: dest.join_col,
            right_col: shipped.join_col,
            left_predicates: dest.predicates.clone(),
            right_predicates: Vec::new(),
            projection: vec![(true, 0), (false, 0)],
        });
        // The temporary table has no indexes, so the class depends only on
        // the destination's join column.
        let class = classify(&augmented, &join_query)?;
        let model = self.catalog.model(&dest.site, class).or_else(|| {
            // Fall back to the unindexed join model: a shipped temp is never
            // indexed, and an indexed destination column may lack a model.
            self.catalog.model(&dest.site, QueryClass::JoinNoIndex)
        })?;
        let x = VariableFamily::Join.extract(&augmented, &join_query)?;
        let x_sel: Vec<f64> = model.var_indexes.iter().map(|&i| x[i]).collect();
        // Regression models can extrapolate below zero for queries far from
        // the sampled region; a negative cost is meaningless for planning,
        // so component estimates are floored at zero.
        let join_cost = model.estimate(&x_sel, dest_probe).max(0.0);
        Some(PlanEstimate {
            join_site: dest.site.clone(),
            ship_prepare_cost: ship_prepare_cost.max(0.0),
            transfer_mb,
            transfer_cost,
            join_cost,
        })
    }
}

/// A schema entry for a shipped intermediate: same columns as the source
/// table, no indexes, the shipped cardinality. Used both when *pricing* a
/// plan and when *executing* one (the destination registers this table for
/// the shipped tuples).
pub fn temp_table(source: &TableDef, cardinality: u64) -> TableDef {
    TableDef {
        id: TableId(10_000 + source.id.0),
        cardinality,
        columns: source
            .columns
            .iter()
            .map(|c| ColumnDef {
                name: c.name.clone(),
                width: c.width,
                domain_max: c.domain_max,
                index: IndexKind::None,
            })
            .collect(),
        tuple_overhead: source.tuple_overhead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{fit_cost_model, CostModel, ModelForm};
    use crate::observation::Observation;
    use crate::qualvar::StateSet;
    use mdbs_sim::datagen::standard_database;

    /// A one-state unary model: cost ≈ 0.5 + 1e-4·N_O.
    fn unary_model() -> CostModel {
        let obs: Vec<Observation> = (0..30)
            .map(|i| {
                let n_o = 1000.0 * (1 + i % 10) as f64;
                Observation {
                    x: vec![n_o, n_o, n_o / 2.0, 44.0, 44.0, n_o * 44.0, n_o * 22.0, 0.0],
                    cost: 0.5 + 1e-4 * n_o + (i % 3) as f64 * 1e-3,
                    probe_cost: 1.0,
                }
            })
            .collect();
        fit_cost_model(
            ModelForm::Coincident,
            StateSet::single(),
            vec![0],
            vec!["N_O".into()],
            &obs,
        )
        .unwrap()
    }

    /// A one-state join model: cost ≈ 1 + 1e-7·(N_I1·N_I2).
    fn join_model() -> CostModel {
        let obs: Vec<Observation> = (0..40)
            .map(|i| {
                let n1 = 1000.0 * (1 + i % 7) as f64;
                let n2 = 2000.0 * (1 + i % 5) as f64;
                Observation {
                    x: vec![
                        n1,
                        n2,
                        n1,
                        n2,
                        n1 / 10.0,
                        n1 * n2,
                        44.0,
                        44.0,
                        88.0,
                        n1 * 44.0,
                        n2 * 44.0,
                        n1 * 8.8,
                    ],
                    cost: 1.0 + 1e-7 * n1 * n2 + (i % 3) as f64 * 1e-3,
                    probe_cost: 1.0,
                }
            })
            .collect();
        fit_cost_model(
            ModelForm::Coincident,
            StateSet::single(),
            vec![5],
            vec!["N_I1*N_I2".into()],
            &obs,
        )
        .unwrap()
    }

    fn optimizer_with_models(sites: &[SiteId]) -> GlobalOptimizer {
        let mut cat = GlobalCatalog::new();
        for s in sites {
            cat.insert_model(s.clone(), QueryClass::UnaryNoIndex, unary_model());
            cat.insert_model(s.clone(), QueryClass::JoinNoIndex, join_model());
        }
        GlobalOptimizer::new(cat, 0.08)
    }

    fn operand(site: &SiteId, schema: &LocalCatalog, idx: usize) -> JoinOperand {
        let t = &schema.tables()[idx];
        JoinOperand {
            site: site.clone(),
            table: t.id,
            join_col: 4,
            predicates: vec![],
        }
    }

    #[test]
    fn both_directions_priced_and_sorted() {
        let s1: SiteId = "oracle".into();
        let s2: SiteId = "db2".into();
        let db1 = standard_database(42);
        let db2 = standard_database(43);
        let opt = optimizer_with_models(&[s1.clone(), s2.clone()]);
        let join = GlobalJoin {
            // Big table at site 1, small at site 2.
            left: operand(&s1, &db1, 9),
            right: operand(&s2, &db2, 1),
        };
        let plans = opt
            .plan_join(
                &join,
                &[(s1.clone(), &db1), (s2.clone(), &db2)],
                &[(s1.clone(), 1.0), (s2.clone(), 1.0)],
            )
            .unwrap();
        assert_eq!(plans.len(), 2);
        assert!(plans[0].total() <= plans[1].total());
        // Shipping the small table to the big one's site must be cheaper:
        // the winning plan joins at the site of the big table.
        assert_eq!(plans[0].join_site, s1);
        // Transfer cost scales with the shipped volume.
        assert!(plans[0].transfer_mb < plans[1].transfer_mb);
    }

    #[test]
    fn contention_shifts_the_decision() {
        let s1: SiteId = "oracle".into();
        let s2: SiteId = "db2".into();
        let db1 = standard_database(42);
        let db2 = standard_database(42);
        let opt = optimizer_with_models(&[s1.clone(), s2.clone()]);
        // Symmetric tables, but site 1 heavily contended. The model here is
        // one-state so the probe cost itself does not change estimates —
        // this test documents the *interface*: probes are per-site inputs.
        let join = GlobalJoin {
            left: operand(&s1, &db1, 4),
            right: operand(&s2, &db2, 4),
        };
        let plans = opt
            .plan_join(
                &join,
                &[(s1.clone(), &db1), (s2.clone(), &db2)],
                &[(s1.clone(), 50.0), (s2.clone(), 0.5)],
            )
            .unwrap();
        assert_eq!(plans.len(), 2);
    }

    #[test]
    fn missing_models_skip_plans() {
        let s1: SiteId = "with-models".into();
        let s2: SiteId = "without".into();
        let db1 = standard_database(42);
        let db2 = standard_database(43);
        let mut cat = GlobalCatalog::new();
        cat.insert_model(s1.clone(), QueryClass::UnaryNoIndex, unary_model());
        cat.insert_model(s1.clone(), QueryClass::JoinNoIndex, join_model());
        // Site 2 has a unary model only -> only the "join at site 1" plan
        // can be priced.
        cat.insert_model(s2.clone(), QueryClass::UnaryNoIndex, unary_model());
        let opt = GlobalOptimizer::new(cat, 0.08);
        let join = GlobalJoin {
            left: operand(&s1, &db1, 5),
            right: operand(&s2, &db2, 3),
        };
        let plans = opt
            .plan_join(
                &join,
                &[(s1.clone(), &db1), (s2.clone(), &db2)],
                &[(s1.clone(), 1.0), (s2.clone(), 1.0)],
            )
            .unwrap();
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].join_site, s1);
    }

    #[test]
    fn missing_schema_is_an_error() {
        let s1: SiteId = "a".into();
        let s2: SiteId = "b".into();
        let db1 = standard_database(42);
        let opt = optimizer_with_models(&[s1.clone(), s2.clone()]);
        let join = GlobalJoin {
            left: operand(&s1, &db1, 5),
            right: operand(&s2, &db1, 3),
        };
        assert!(opt
            .plan_join(&join, &[(s1.clone(), &db1)], &[(s1, 1.0), (s2, 1.0)])
            .is_err());
    }
}
