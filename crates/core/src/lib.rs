//! # mdbs-core
//!
//! The **multi-states query sampling method** of
//! *"Developing Cost Models with Qualitative Variables for Dynamic
//! Multidatabase Environments"* (Zhu, Sun, Motheramgari — ICDE 2000).
//!
//! A multidatabase system (MDBS) cannot see inside its autonomous local
//! database systems, yet its global query optimizer needs per-site cost
//! models. The static query sampling method fits regression cost models to
//! observed sample-query costs — but in a *dynamic* environment the same
//! query's cost can swing by an order of magnitude with the background
//! load. This crate implements the paper's fix:
//!
//! 1. gauge the combined contention level with a cheap **probing query**
//!    ([`probing`]),
//! 2. split the probing-cost range into discrete **contention states** with
//!    the **IUPMA** or **ICMA** algorithms ([`states`], [`qualvar`]),
//! 3. fit a **qualitative regression cost model** whose intercept *and*
//!    slopes vary by state ([`model`]), with automatic variable selection
//!    ([`variables`], [`selection`]) and multicollinearity screening,
//! 4. validate with R², SEE, F-tests and good-estimate percentages
//!    ([`validate`]),
//! 5. store models in the MDBS global catalog ([`catalog`]) and use them
//!    for global query optimization ([`optimizer`]).
//!
//! The end-to-end pipeline — sampling, probing, state determination,
//! selection, fitting, validation — lives in [`mod@derive`]. The quickest way
//! in:
//!
//! ```
//! use mdbs_core::derive::{DerivationConfig, derive_cost_model};
//! use mdbs_core::classes::QueryClass;
//! use mdbs_core::pipeline::PipelineCtx;
//! use mdbs_core::states::StateAlgorithm;
//! use mdbs_sim::{MdbsAgent, VendorProfile, LoadBuilder, ContentionProfile};
//! use mdbs_sim::datagen::standard_database;
//!
//! let mut agent = MdbsAgent::new(VendorProfile::oracle8(), standard_database(42), 1);
//! agent.set_load_builder(LoadBuilder::new(ContentionProfile::Uniform { lo: 5.0, hi: 120.0 }));
//! let cfg = DerivationConfig::quick(); // small sample for doc-test speed
//! let derived = derive_cost_model(
//!     &mut agent,
//!     QueryClass::UnaryNoIndex,
//!     StateAlgorithm::Iupma,
//!     &cfg,
//!     &mut PipelineCtx::seeded(7),
//! ).unwrap();
//! assert!(derived.model.fit.r_squared > 0.5);
//! ```
//!
//! Every pipeline entry point takes a [`pipeline::PipelineCtx`] carrying the
//! cross-cutting concerns (telemetry, RNG seed); batch derivation over many
//! `(site, class)` pairs goes through [`derive::derive_all`], which fans out
//! to a scoped-thread [`pool`] and publishes into the concurrent
//! [`registry::ModelRegistry`] for a non-blocking estimation hot path.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod classes;
pub mod correction;
pub mod derive;
pub mod maintenance;
pub mod mdbs;
pub mod model;
pub mod observation;
pub mod optimizer;
pub mod persist;
pub mod pipeline;
pub mod pool;
pub mod probing;
pub mod qualvar;
pub mod registry;
pub mod sampling;
pub mod selection;
pub mod server;
pub mod states;
pub mod store;
pub mod validate;
pub mod variables;

pub use catalog::GlobalCatalog;
pub use classes::QueryClass;
pub use correction::{Correction, CorrectionConfig, CorrectionLedger, EstimateQuery};
pub use derive::{
    derive_all, derive_cost_model, BatchConfig, BatchOutcome, DerivationConfig, DeriveJob,
    DerivedModel,
};
pub use maintenance::{MaintenanceConfig, MaintenanceConfigBuilder};
pub use mdbs::{GlobalExecution, Mdbs};
pub use model::{CostModel, FitEngine, ModelAccumulator, ModelForm};
pub use observation::Observation;
pub use pipeline::PipelineCtx;
pub use qualvar::StateSet;
pub use registry::{EstimateDetail, ModelRegistry, RegisteredModel};
pub use server::{
    EstimationServer, RequestTrace, ServeConfig, ServeConfigBuilder, ServeReport, TraceEvent,
};
pub use states::StateAlgorithm;
pub use store::{
    CatalogDelta, CatalogFormat, CatalogSnapshot, CatalogStore, DeltaEntry, FileCatalogStore,
    StoreError,
};

/// Errors produced by the cost-model derivation machinery.
///
/// Marked `#[non_exhaustive]`: downstream matches must keep a wildcard arm
/// so new failure modes can be added without a breaking change. The
/// [`std::error::Error::source`] chain exposes the underlying numerical
/// error for [`CoreError::Numeric`], so callers can match on the root cause
/// instead of parsing messages.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Too few observations for the requested model.
    InsufficientSamples {
        /// Observations required.
        needed: usize,
        /// Observations available.
        got: usize,
    },
    /// The underlying numerical routine failed.
    Numeric(mdbs_stats::StatsError),
    /// The local agent rejected a query.
    Agent(String),
    /// The observations are degenerate (e.g. all probing costs equal when a
    /// multi-state partition was requested).
    Degenerate(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::InsufficientSamples { needed, got } => {
                write!(f, "insufficient samples: needed {needed}, got {got}")
            }
            CoreError::Numeric(e) => write!(f, "numeric error: {e}"),
            CoreError::Agent(e) => write!(f, "agent error: {e}"),
            CoreError::Degenerate(msg) => write!(f, "degenerate data: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mdbs_stats::StatsError> for CoreError {
    fn from(e: mdbs_stats::StatsError) -> Self {
        CoreError::Numeric(e)
    }
}
