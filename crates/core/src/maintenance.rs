//! Cost-model maintenance for occasionally-changing factors (paper §2).
//!
//! The multi-states model absorbs the *frequently*-changing factors through
//! its qualitative variable — but the paper's §2 lists factors that change
//! *occasionally* and durably: DBMS configuration, schema, hardware. For
//! those, "a simple and effective approach … is to invoke the static query
//! sampling method periodically or whenever a significant change for the
//! factors occurs". This module supplies the "whenever": a [`DriftMonitor`]
//! watches the stream of (estimated, observed) cost pairs the MDBS sees
//! during normal operation and flags the model once its good-estimate rate
//! over a sliding window falls below a threshold, and a [`ModelMaintainer`]
//! bundles the monitor with the re-derivation call.
//!
//! Two properties make this cheap and safe:
//!
//! * drift detection is free — the MDBS observes actual local costs for
//!   every query it routed anyway;
//! * *data growth does not trigger false alarms*: the explanatory variables
//!   (operand/intermediate/result sizes) are re-extracted per query from
//!   the catalog, so a grown table changes the inputs, not the model. Only
//!   changes that reshape the cost *function itself* (memory, indexes,
//!   disks, buffer pools) degrade the good-estimate rate.

use crate::classes::QueryClass;
use crate::derive::{derive_cost_model_traced, DerivationConfig, DerivedModel};
use crate::states::StateAlgorithm;
use crate::validate::TestPoint;
use crate::CoreError;
use mdbs_obs::Telemetry;
use mdbs_sim::MdbsAgent;
use std::collections::VecDeque;

/// Configuration of the drift monitor.
#[derive(Debug, Clone, PartialEq)]
pub struct MaintenanceConfig {
    /// Size of the sliding window of recent estimates.
    pub window: usize,
    /// Minimum observations before drift can be declared.
    pub min_observations: usize,
    /// Declare drift when the fraction of *good* estimates (within 2×)
    /// in the window falls below this.
    pub min_good_fraction: f64,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        MaintenanceConfig {
            window: 50,
            min_observations: 20,
            min_good_fraction: 0.5,
        }
    }
}

/// Sliding-window drift detection over estimate quality.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    config: MaintenanceConfig,
    recent: VecDeque<bool>,
}

impl DriftMonitor {
    /// A monitor with the given configuration.
    pub fn new(config: MaintenanceConfig) -> Self {
        DriftMonitor {
            recent: VecDeque::with_capacity(config.window),
            config,
        }
    }

    /// Records one (observed, estimated) pair from production traffic.
    pub fn record(&mut self, observed: f64, estimated: f64) {
        let p = TestPoint {
            observed,
            estimated,
            result_card: 0,
            probe_cost: 0.0,
        };
        if self.recent.len() == self.config.window {
            self.recent.pop_front();
        }
        self.recent.push_back(p.is_good());
    }

    /// Fraction of good estimates currently in the window.
    pub fn good_fraction(&self) -> f64 {
        if self.recent.is_empty() {
            return 1.0;
        }
        self.recent.iter().filter(|&&g| g).count() as f64 / self.recent.len() as f64
    }

    /// Number of recorded pairs currently in the window.
    pub fn observations(&self) -> usize {
        self.recent.len()
    }

    /// Whether the model has drifted (enough evidence + low quality).
    pub fn drifted(&self) -> bool {
        self.recent.len() >= self.config.min_observations
            && self.good_fraction() < self.config.min_good_fraction
    }

    /// Clears the window (after a re-derivation).
    pub fn reset(&mut self) {
        self.recent.clear();
    }
}

/// A derived model plus the machinery to keep it fresh.
#[derive(Debug, Clone)]
pub struct ModelMaintainer {
    /// The model currently in production.
    pub derived: DerivedModel,
    /// The drift monitor fed by production traffic.
    pub monitor: DriftMonitor,
    /// How re-derivations are configured.
    pub derivation: DerivationConfig,
    /// Which state-determination algorithm re-derivations use.
    pub algorithm: StateAlgorithm,
    /// How many times the model has been rebuilt.
    pub rederivations: usize,
    /// A derivation is itself a sampling experiment and can land on a weak
    /// model; a rebuild runs up to this many attempts (distinct sample
    /// seeds) and keeps the best fit by R².
    pub rederive_attempts: usize,
}

impl ModelMaintainer {
    /// Wraps an existing derivation.
    pub fn new(
        derived: DerivedModel,
        maintenance: MaintenanceConfig,
        derivation: DerivationConfig,
        algorithm: StateAlgorithm,
    ) -> Self {
        ModelMaintainer {
            derived,
            monitor: DriftMonitor::new(maintenance),
            derivation,
            algorithm,
            rederivations: 0,
            rederive_attempts: 3,
        }
    }

    /// The class this maintainer covers.
    pub fn class(&self) -> QueryClass {
        self.derived.class
    }

    /// Feeds one production observation; returns `true` when the model has
    /// now drifted and should be rebuilt.
    pub fn observe(&mut self, observed: f64, estimated: f64) -> bool {
        self.observe_traced(observed, estimated, &mut Telemetry::disabled())
    }

    /// [`Self::observe`] with telemetry: records the drift-window quality
    /// series (`maintenance.good_fraction` histogram, one sample per call)
    /// and the `maintenance.drift_flags` counter for calls that report the
    /// model as drifted.
    pub fn observe_traced(&mut self, observed: f64, estimated: f64, tel: &mut Telemetry) -> bool {
        self.monitor.record(observed, estimated);
        tel.inc("maintenance.observations", 1);
        tel.observe("maintenance.good_fraction", self.monitor.good_fraction());
        let drifted = self.monitor.drifted();
        if drifted {
            tel.inc("maintenance.drift_flags", 1);
        }
        drifted
    }

    /// Rebuilds the model by re-running the full derivation pipeline
    /// against the (changed) local site — up to [`Self::rederive_attempts`]
    /// times, keeping the best attempt by R² — then resets the monitor.
    pub fn rederive(&mut self, agent: &mut MdbsAgent, seed: u64) -> Result<(), CoreError> {
        self.rederive_traced(agent, seed, &mut Telemetry::disabled())
    }

    /// [`Self::rederive`] with telemetry: wraps the attempts in a
    /// `maintenance.rederive` span (attempt count, winning R², window
    /// quality at trigger time) and counts `maintenance.rederivations`.
    pub fn rederive_traced(
        &mut self,
        agent: &mut MdbsAgent,
        seed: u64,
        tel: &mut Telemetry,
    ) -> Result<(), CoreError> {
        let span = tel.begin_span("maintenance.rederive");
        tel.field(span, "class", format!("{:?}", self.derived.class));
        tel.field(
            span,
            "good_fraction_at_trigger",
            self.monitor.good_fraction(),
        );
        let mut best: Option<crate::derive::DerivedModel> = None;
        for attempt in 0..self.rederive_attempts.max(1) as u64 {
            let candidate = derive_cost_model_traced(
                agent,
                self.derived.class,
                self.algorithm,
                &self.derivation,
                seed.wrapping_add(attempt),
                tel,
            )?;
            let better = best.as_ref().map_or(true, |b| {
                candidate.model.fit.r_squared > b.model.fit.r_squared
            });
            if better {
                best = Some(candidate);
            }
        }
        self.derived = best.expect("at least one attempt ran");
        self.monitor.reset();
        self.rederivations += 1;
        tel.inc("maintenance.rederivations", 1);
        tel.field(span, "attempts", self.rederive_attempts.max(1) as u64);
        tel.field(span, "r_squared", self.derived.model.fit.r_squared);
        tel.end_span(span);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_monitor_reports_no_drift() {
        let m = DriftMonitor::new(MaintenanceConfig::default());
        assert!(!m.drifted());
        assert_eq!(m.good_fraction(), 1.0);
    }

    #[test]
    fn good_traffic_keeps_the_model() {
        let mut m = DriftMonitor::new(MaintenanceConfig::default());
        for i in 0..100 {
            let obs = 10.0 + (i % 5) as f64;
            m.record(obs, obs * 1.1);
        }
        assert!(!m.drifted());
        assert!(m.good_fraction() > 0.99);
    }

    #[test]
    fn sustained_bad_estimates_trigger_drift() {
        let mut m = DriftMonitor::new(MaintenanceConfig::default());
        for _ in 0..30 {
            m.record(10.0, 100.0); // 10x off.
        }
        assert!(m.drifted());
        assert!(m.good_fraction() < 0.1);
    }

    #[test]
    fn drift_needs_minimum_evidence() {
        let mut m = DriftMonitor::new(MaintenanceConfig {
            min_observations: 20,
            ..MaintenanceConfig::default()
        });
        for _ in 0..10 {
            m.record(10.0, 100.0);
        }
        assert!(!m.drifted(), "drift declared on too little evidence");
    }

    #[test]
    fn window_slides() {
        let mut m = DriftMonitor::new(MaintenanceConfig {
            window: 30,
            min_observations: 20,
            min_good_fraction: 0.5,
        });
        // Bad history...
        for _ in 0..30 {
            m.record(10.0, 1000.0);
        }
        assert!(m.drifted());
        // ...fully displaced by good recent traffic.
        for _ in 0..30 {
            m.record(10.0, 10.5);
        }
        assert!(!m.drifted());
        assert_eq!(m.observations(), 30);
    }

    #[test]
    fn reset_clears_evidence() {
        let mut m = DriftMonitor::new(MaintenanceConfig::default());
        for _ in 0..40 {
            m.record(10.0, 500.0);
        }
        assert!(m.drifted());
        m.reset();
        assert!(!m.drifted());
        assert_eq!(m.observations(), 0);
    }

    #[test]
    fn window_shorter_than_min_observations_never_drifts() {
        // The window caps the evidence below the minimum: the gate can
        // never be satisfied, no matter how bad the estimates.
        let mut m = DriftMonitor::new(MaintenanceConfig {
            window: 10,
            min_observations: 20,
            min_good_fraction: 0.5,
        });
        for _ in 0..100 {
            m.record(10.0, 1000.0);
        }
        assert_eq!(m.observations(), 10);
        assert_eq!(m.good_fraction(), 0.0);
        assert!(!m.drifted(), "window (10) < min_observations (20)");
    }

    #[test]
    fn good_fraction_on_empty_window_is_one() {
        let mut m = DriftMonitor::new(MaintenanceConfig::default());
        assert_eq!(m.good_fraction(), 1.0);
        m.record(10.0, 1000.0);
        assert_eq!(m.good_fraction(), 0.0);
        m.reset();
        // Back to the optimistic prior after reset, too.
        assert_eq!(m.good_fraction(), 1.0);
    }

    #[test]
    fn reset_after_drift_requires_fresh_evidence_to_redrift() {
        let mut m = DriftMonitor::new(MaintenanceConfig {
            window: 30,
            min_observations: 20,
            min_good_fraction: 0.5,
        });
        for _ in 0..25 {
            m.record(10.0, 1000.0);
        }
        assert!(m.drifted());
        m.reset();
        // 19 bad estimates: still one short of the evidence gate.
        for _ in 0..19 {
            m.record(10.0, 1000.0);
        }
        assert!(!m.drifted());
        m.record(10.0, 1000.0);
        assert!(m.drifted(), "the 20th bad estimate crosses the gate");
    }
}
