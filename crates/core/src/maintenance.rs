//! Cost-model maintenance for occasionally-changing factors (paper §2).
//!
//! The multi-states model absorbs the *frequently*-changing factors through
//! its qualitative variable — but the paper's §2 lists factors that change
//! *occasionally* and durably: DBMS configuration, schema, hardware. For
//! those, "a simple and effective approach … is to invoke the static query
//! sampling method periodically or whenever a significant change for the
//! factors occurs". This module supplies the "whenever": a [`DriftMonitor`]
//! watches the stream of (estimated, observed) cost pairs the MDBS sees
//! during normal operation and flags the model once its good-estimate rate
//! over a sliding window falls below a threshold, and a [`ModelMaintainer`]
//! bundles the monitor with the re-derivation call.
//!
//! Two properties make this cheap and safe:
//!
//! * drift detection is free — the MDBS observes actual local costs for
//!   every query it routed anyway;
//! * *data growth does not trigger false alarms*: the explanatory variables
//!   (operand/intermediate/result sizes) are re-extracted per query from
//!   the catalog, so a grown table changes the inputs, not the model. Only
//!   changes that reshape the cost *function itself* (memory, indexes,
//!   disks, buffer pools) degrade the good-estimate rate.

use crate::catalog::SiteId;
use crate::classes::QueryClass;
use crate::derive::{derive_inner, DerivationConfig, DeriveJob, DerivedModel};
use crate::model::ModelAccumulator;
use crate::observation::Observation;
use crate::pipeline::PipelineCtx;
use crate::pool;
use crate::registry::ModelRegistry;
use crate::states::StateAlgorithm;
use crate::validate::TestPoint;
use crate::CoreError;
use mdbs_obs::Telemetry;
use mdbs_sim::MdbsAgent;
use mdbs_stats::rng::split_stream;
use std::collections::VecDeque;

/// Configuration of the drift monitor.
///
/// Marked `#[non_exhaustive]`: external crates construct it through
/// [`MaintenanceConfig::builder`], so new knobs can be added without
/// breaking callers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct MaintenanceConfig {
    /// Size of the sliding window of recent estimates.
    pub window: usize,
    /// Minimum observations before drift can be declared.
    pub min_observations: usize,
    /// Declare drift when the fraction of *good* estimates (within 2×)
    /// in the window falls below this.
    pub min_good_fraction: f64,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        MaintenanceConfig {
            window: 50,
            min_observations: 20,
            min_good_fraction: 0.5,
        }
    }
}

impl MaintenanceConfig {
    /// A builder seeded with [`MaintenanceConfig::default`] — the one way
    /// for external crates to construct a config, since the struct is
    /// `#[non_exhaustive]`.
    pub fn builder() -> MaintenanceConfigBuilder {
        MaintenanceConfigBuilder {
            cfg: MaintenanceConfig::default(),
        }
    }

    /// Returns a config whose fields are mutually consistent.
    ///
    /// [`DriftMonitor::record`] caps the evidence deque at `window`, so a
    /// `min_observations` above `window` is a gate that can never be
    /// satisfied: the monitor would silently never declare drift, no matter
    /// how bad the estimates. This clamps `min_observations` into
    /// `1..=window` (and `window` itself to at least 1,
    /// `min_good_fraction` into `[0, 1]`) so every configuration the
    /// monitor actually runs with can reach its gate. The lenient
    /// counterpart of [`MaintenanceConfigBuilder::build`], applied on
    /// monitor construction.
    fn clamped(self) -> Self {
        let window = self.window.max(1);
        MaintenanceConfig {
            window,
            min_observations: self.min_observations.clamp(1, window),
            min_good_fraction: self.min_good_fraction.clamp(0.0, 1.0),
        }
    }
}

/// Builder for [`MaintenanceConfig`]: every setter overrides one default,
/// and [`MaintenanceConfigBuilder::build`] rejects inconsistent
/// combinations instead of silently clamping them.
#[derive(Debug, Clone)]
pub struct MaintenanceConfigBuilder {
    cfg: MaintenanceConfig,
}

impl MaintenanceConfigBuilder {
    /// Sliding-window size (must be ≥ 1).
    pub fn window(mut self, v: usize) -> Self {
        self.cfg.window = v;
        self
    }

    /// Minimum observations before drift can be declared (must be in
    /// `1..=window`).
    pub fn min_observations(mut self, v: usize) -> Self {
        self.cfg.min_observations = v;
        self
    }

    /// Good-estimate fraction below which drift is declared (must be in
    /// `[0, 1]`).
    pub fn min_good_fraction(mut self, v: f64) -> Self {
        self.cfg.min_good_fraction = v;
        self
    }

    /// Validates and returns the config. Inconsistent knobs — a drift gate
    /// the sliding window could never satisfy — are an error here, unlike
    /// monitor construction, which clamps defensively.
    pub fn build(self) -> Result<MaintenanceConfig, CoreError> {
        let c = &self.cfg;
        if c.window == 0 {
            return Err(CoreError::Degenerate("window must be >= 1".to_string()));
        }
        if c.min_observations == 0 || c.min_observations > c.window {
            return Err(CoreError::Degenerate(format!(
                "min_observations must be in 1..=window ({}), got {}",
                c.window, c.min_observations
            )));
        }
        if !c.min_good_fraction.is_finite() || !(0.0..=1.0).contains(&c.min_good_fraction) {
            return Err(CoreError::Degenerate(
                "min_good_fraction must be in [0, 1]".to_string(),
            ));
        }
        Ok(self.cfg)
    }
}

/// Sliding-window drift detection over estimate quality.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    config: MaintenanceConfig,
    recent: VecDeque<bool>,
}

impl DriftMonitor {
    /// A monitor with the given configuration. The config is clamped to
    /// mutual consistency first, so a `min_observations` above `window` —
    /// a gate the sliding window could never satisfy — is clamped instead
    /// of making drift silently undetectable forever.
    pub fn new(config: MaintenanceConfig) -> Self {
        let config = config.clamped();
        DriftMonitor {
            recent: VecDeque::with_capacity(config.window),
            config,
        }
    }

    /// Records one (observed, estimated) pair from production traffic.
    pub fn record(&mut self, observed: f64, estimated: f64) {
        let p = TestPoint {
            observed,
            estimated,
            result_card: 0,
            probe_cost: 0.0,
        };
        if self.recent.len() == self.config.window {
            self.recent.pop_front();
        }
        self.recent.push_back(p.is_good());
    }

    /// Fraction of good estimates currently in the window.
    pub fn good_fraction(&self) -> f64 {
        if self.recent.is_empty() {
            return 1.0;
        }
        self.recent.iter().filter(|&&g| g).count() as f64 / self.recent.len() as f64
    }

    /// Number of recorded pairs currently in the window.
    pub fn observations(&self) -> usize {
        self.recent.len()
    }

    /// Whether the model has drifted (enough evidence + low quality).
    pub fn drifted(&self) -> bool {
        self.recent.len() >= self.config.min_observations
            && self.good_fraction() < self.config.min_good_fraction
    }

    /// Clears the window (after a re-derivation).
    pub fn reset(&mut self) {
        self.recent.clear();
    }
}

/// A derived model plus the machinery to keep it fresh.
///
/// Two refresh paths of very different cost:
///
/// * [`ModelMaintainer::refit_incremental`] folds new observations into
///   the model's stored sufficient statistics ([`ModelAccumulator`]) and
///   re-solves in O(k³) — coefficients track the environment while the
///   contention-state partition and variable set stay fixed;
/// * [`ModelMaintainer::rederive`] re-runs the whole sampling pipeline
///   (probing, state determination, variable selection) and is reserved
///   for when the states themselves have shifted — i.e. when the drift
///   monitor says the model *shape* no longer matches the environment.
#[derive(Debug, Clone)]
pub struct ModelMaintainer {
    /// The model currently in production.
    pub derived: DerivedModel,
    /// The drift monitor fed by production traffic.
    pub monitor: DriftMonitor,
    /// How re-derivations are configured.
    pub derivation: DerivationConfig,
    /// Which state-determination algorithm re-derivations use.
    pub algorithm: StateAlgorithm,
    /// How many times the model has been rebuilt.
    pub rederivations: usize,
    /// A derivation is itself a sampling experiment and can land on a weak
    /// model; a rebuild runs up to this many attempts (distinct sample
    /// seeds) and keeps the best fit by R².
    pub rederive_attempts: usize,
    /// How many times [`ModelMaintainer::refit_incremental`] has run.
    pub incremental_refits: usize,
    /// Sufficient statistics of the production model's fitting sample,
    /// kept current so incremental refits never rescan observations.
    accumulator: ModelAccumulator,
}

impl ModelMaintainer {
    /// Wraps an existing derivation.
    pub fn new(
        derived: DerivedModel,
        maintenance: MaintenanceConfig,
        derivation: DerivationConfig,
        algorithm: StateAlgorithm,
    ) -> Self {
        let accumulator =
            ModelAccumulator::from_observations(&derived.model, &derived.observations);
        ModelMaintainer {
            derived,
            monitor: DriftMonitor::new(maintenance),
            derivation,
            algorithm,
            rederivations: 0,
            rederive_attempts: 3,
            incremental_refits: 0,
            accumulator,
        }
    }

    /// Wraps a model restored from a catalog — the long-lived serving loop
    /// starts from persisted models, not a fresh [`DerivedModel`].
    ///
    /// When the catalog also persisted the model's fit accumulator
    /// (`gram-entry` blocks), pass it so incremental refits resume from the
    /// full fitting sample; otherwise the accumulator starts empty and
    /// warms up from production observations (early
    /// [`ModelMaintainer::refit_incremental`] calls may fail with
    /// insufficient per-state evidence until it has absorbed enough — the
    /// serving loop treats that as "defer", not as fatal). Errors when a
    /// provided accumulator does not describe the model's state partition
    /// and variable set.
    pub fn from_model(
        class: QueryClass,
        model: crate::model::CostModel,
        accumulator: Option<ModelAccumulator>,
        maintenance: MaintenanceConfig,
        derivation: DerivationConfig,
        algorithm: StateAlgorithm,
    ) -> Result<Self, CoreError> {
        let derived = DerivedModel {
            class,
            one_state: model.clone(),
            model,
            history: Vec::new(),
            merges: 0,
            observations: Vec::new(),
            probe_estimator: None,
            avg_sample_cost: 0.0,
        };
        let mut maintainer = ModelMaintainer::new(derived, maintenance, derivation, algorithm);
        if let Some(acc) = accumulator {
            maintainer.restore_accumulator(acc)?;
        }
        Ok(maintainer)
    }

    /// The sufficient statistics backing incremental refits (persisted in
    /// the catalog as `gram-entry` blocks).
    pub fn accumulator(&self) -> &ModelAccumulator {
        &self.accumulator
    }

    /// Replaces the stored sufficient statistics (e.g. when restoring a
    /// maintainer from a catalog that persisted them). The accumulator must
    /// describe the same state partition and variable set as the production
    /// model.
    pub fn restore_accumulator(&mut self, accumulator: ModelAccumulator) -> Result<(), CoreError> {
        let model = &self.derived.model;
        if accumulator.states() != &model.states
            || accumulator.var_indexes() != model.var_indexes.as_slice()
        {
            return Err(CoreError::Degenerate(
                "accumulator does not match the production model".into(),
            ));
        }
        self.accumulator = accumulator;
        Ok(())
    }

    /// The class this maintainer covers.
    pub fn class(&self) -> QueryClass {
        self.derived.class
    }

    /// Feeds one production observation; returns `true` when the model has
    /// now drifted and should be rebuilt.
    ///
    /// When `ctx.telemetry` is enabled, records the drift-window quality
    /// series (`maintenance.good_fraction` histogram, one sample per call)
    /// and the `maintenance.drift_flags` counter for calls that report the
    /// model as drifted.
    // ctx: serial-only
    pub fn observe(&mut self, observed: f64, estimated: f64, ctx: &mut PipelineCtx) -> bool {
        self.observe_inner(observed, estimated, &mut ctx.telemetry)
    }

    fn observe_inner(&mut self, observed: f64, estimated: f64, tel: &mut Telemetry) -> bool {
        self.monitor.record(observed, estimated);
        tel.inc("maintenance.observations", 1);
        tel.observe("maintenance.good_fraction", self.monitor.good_fraction());
        let drifted = self.monitor.drifted();
        if drifted {
            tel.inc("maintenance.drift_flags", 1);
        }
        drifted
    }

    /// Rebuilds the model by re-running the full derivation pipeline
    /// against the (changed) local site — up to [`Self::rederive_attempts`]
    /// times (sample seeds `ctx.seed + attempt`), keeping the best attempt
    /// by R² — then resets the monitor.
    ///
    /// When `ctx.telemetry` is enabled, wraps the attempts in a
    /// `maintenance.rederive` span (attempt count, winning R², window
    /// quality at trigger time) and counts `maintenance.rederivations`.
    // ctx: serial-only
    pub fn rederive(
        &mut self,
        agent: &mut MdbsAgent,
        ctx: &mut PipelineCtx,
    ) -> Result<(), CoreError> {
        self.rederive_inner(agent, ctx.seed, &mut ctx.telemetry)
    }

    fn rederive_inner(
        &mut self,
        agent: &mut MdbsAgent,
        seed: u64,
        tel: &mut Telemetry,
    ) -> Result<(), CoreError> {
        let span = tel.begin_span("maintenance.rederive");
        tel.field(span, "class", format!("{:?}", self.derived.class));
        tel.field(
            span,
            "good_fraction_at_trigger",
            self.monitor.good_fraction(),
        );
        let best = rederive_best(
            agent,
            self.derived.class,
            self.algorithm,
            &self.derivation,
            self.rederive_attempts,
            seed,
            tel,
        )?;
        self.derived = best;
        self.accumulator =
            ModelAccumulator::from_observations(&self.derived.model, &self.derived.observations);
        self.monitor.reset();
        self.rederivations += 1;
        tel.inc("maintenance.rederivations", 1);
        tel.field(span, "attempts", self.rederive_attempts.max(1) as u64);
        tel.field(span, "r_squared", self.derived.model.fit.r_squared);
        tel.end_span(span);
        Ok(())
    }

    /// Folds fresh production observations into the stored sufficient
    /// statistics and re-solves the model in O(k³) — no design-matrix
    /// rebuild, no rescan of the historical sample (which is *not* needed
    /// at all for this path; only the accumulator is). The state partition
    /// and variable set are kept; full [`ModelMaintainer::rederive`] stays
    /// reserved for when the states themselves shift.
    ///
    /// The refreshed model replaces `derived.model`, the drift window is
    /// cleared, and — when `registry` is given — the model is published as
    /// a new snapshot version so concurrent estimators switch over
    /// atomically; the published version is returned (`None` without a
    /// registry) so callers can stamp maintenance records with the exact
    /// snapshot the refit produced. Counted as
    /// `maintenance.incremental_refits`.
    // ctx: serial-only
    pub fn refit_incremental(
        &mut self,
        site: &SiteId,
        new_observations: &[Observation],
        registry: Option<&ModelRegistry>,
        ctx: &mut PipelineCtx,
    ) -> Result<Option<u64>, CoreError> {
        self.accumulator.absorb(new_observations);
        self.refit_absorbed(site, new_observations, registry, ctx)
    }

    /// Like [`Self::refit_incremental`], but records the republish as a
    /// [`crate::store::CatalogDelta`] against `base_version` instead of
    /// asking the caller to rewrite the whole catalog: the delta carries
    /// the replacement model plus the accumulator *increment* (the
    /// statistics of just `new_observations`). The maintainer's own
    /// accumulator advances by merging that same increment — the
    /// operation [`crate::store::CatalogSnapshot::apply_delta`] replays —
    /// so a restore from base + delta reproduces this maintainer's
    /// accumulator bit for bit.
    ///
    /// Returns the delta (advancing `base_version` → `base_version + 1`,
    /// or to the registry-published version when a registry is given) and
    /// the published version, if any.
    // ctx: serial-only
    pub fn refit_incremental_delta(
        &mut self,
        site: &SiteId,
        new_observations: &[Observation],
        registry: Option<&ModelRegistry>,
        base_version: u64,
        ctx: &mut PipelineCtx,
    ) -> Result<(crate::store::CatalogDelta, Option<u64>), CoreError> {
        let increment = self.accumulator.increment_from(new_observations);
        self.accumulator.merge(&increment)?;
        let published = self.refit_absorbed(site, new_observations, registry, ctx)?;
        let version = published.unwrap_or(base_version + 1).max(base_version + 1);
        let mut delta = crate::store::CatalogDelta::new(base_version, version);
        delta.put_model(site.clone(), self.derived.class, self.derived.model.clone());
        delta.merge_accumulator(site.clone(), self.derived.class, increment);
        Ok((delta, published))
    }

    /// Shared tail of the incremental-refit paths: re-solve from the
    /// (already advanced) accumulator, swap the model in, publish.
    // ctx: serial-only
    fn refit_absorbed(
        &mut self,
        site: &SiteId,
        new_observations: &[Observation],
        registry: Option<&ModelRegistry>,
        ctx: &mut PipelineCtx,
    ) -> Result<Option<u64>, CoreError> {
        let tel = &mut ctx.telemetry;
        let span = tel.begin_span("maintenance.refit_incremental");
        tel.field(span, "class", format!("{:?}", self.derived.class));
        tel.field(span, "absorbed", new_observations.len() as u64);
        let model = self.accumulator.refit()?;
        self.derived
            .observations
            .extend_from_slice(new_observations);
        self.derived.model = model;
        self.monitor.reset();
        self.incremental_refits += 1;
        tel.inc("maintenance.incremental_refits", 1);
        tel.inc("fit.gram.rescans_avoided", self.accumulator.n() as u64);
        tel.field(span, "n", self.accumulator.n() as u64);
        tel.field(span, "r_squared", self.derived.model.fit.r_squared);
        let published = registry.map(|registry| {
            registry.publish(site.clone(), self.derived.class, self.derived.model.clone())
        });
        if let Some(version) = published {
            tel.field(span, "published_version", version);
        }
        tel.end_span(span);
        Ok(published)
    }
}

/// Best-of-`attempts` derivation (sample seeds `seed + attempt`, winner by
/// R²), shared by the serial rebuild and the pooled batch path.
fn rederive_best(
    agent: &mut MdbsAgent,
    class: QueryClass,
    algorithm: StateAlgorithm,
    cfg: &DerivationConfig,
    attempts: usize,
    seed: u64,
    tel: &mut Telemetry,
) -> Result<DerivedModel, CoreError> {
    let mut best: Option<DerivedModel> = None;
    for attempt in 0..attempts.max(1) as u64 {
        let candidate = derive_inner(
            agent,
            class,
            algorithm,
            cfg,
            seed.wrapping_add(attempt),
            tel,
        )?;
        let better = best.as_ref().map_or(true, |b| {
            candidate.model.fit.r_squared > b.model.fit.r_squared
        });
        if better {
            best = Some(candidate);
        }
    }
    Ok(best.expect("at least one attempt ran"))
}

/// Rebuilds every drifted maintainer of a fleet on a worker pool, exactly
/// as the per-maintainer [`ModelMaintainer::rederive`] would (best of
/// [`ModelMaintainer::rederive_attempts`] by R²), then publishes the fresh
/// models into `registry` (when given) so estimation switches over without
/// ever blocking.
///
/// Seeds follow the [`crate::derive::derive_all`] scheme: each drifted
/// `(site, class, algorithm)` triple is a [`DeriveJob`] whose stable key
/// splits an environment seed (passed to `make_agent`) and a base sample
/// seed from `ctx.seed`, so the rebuilt fleet is reproducible from the root
/// seed regardless of worker count or which subset happened to drift.
///
/// Returns the number of models rebuilt. Jobs fail independently; the
/// first error is returned after every successful rebuild has been
/// applied, so a degenerate site cannot wedge the rest of the fleet.
// ctx: serial-only
pub fn rederive_drifted<F>(
    fleet: &mut [(SiteId, ModelMaintainer)],
    workers: Option<usize>,
    make_agent: F,
    registry: Option<&ModelRegistry>,
    ctx: &mut PipelineCtx,
) -> Result<usize, CoreError>
where
    F: Fn(&SiteId, QueryClass, u64) -> MdbsAgent + Sync,
{
    let drifted: Vec<usize> = fleet
        .iter()
        .enumerate()
        .filter(|(_, (_, m))| m.monitor.drifted())
        .map(|(i, _)| i)
        .collect();
    let span = ctx.telemetry.begin_span("maintenance.rederive_batch");
    ctx.telemetry.field(span, "fleet", fleet.len() as u64);
    ctx.telemetry.field(span, "drifted", drifted.len() as u64);

    let jobs: Vec<(usize, DeriveJob, DerivationConfig, usize)> = drifted
        .iter()
        .map(|&i| {
            let (site, m) = &fleet[i];
            (
                i,
                DeriveJob::new(site.clone(), m.class(), m.algorithm),
                m.derivation.clone(),
                m.rederive_attempts,
            )
        })
        .collect();
    let workers = pool::effective_workers(workers, jobs.len());
    let root_seed = ctx.seed;
    let traced = ctx.telemetry.is_enabled();
    let make_agent = &make_agent;

    let (results, report) = pool::run_jobs(jobs, workers, move |_, (i, job, cfg, attempts)| {
        let key = job.job_key();
        let env_seed = split_stream(root_seed, key ^ crate::derive::ENV_STREAM);
        let gen_seed = split_stream(root_seed, key ^ crate::derive::GEN_STREAM);
        let mut agent = make_agent(&job.site, job.class, env_seed);
        let mut tel = if traced {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        };
        let result = rederive_best(
            &mut agent,
            job.class,
            job.algorithm,
            &cfg,
            attempts,
            gen_seed,
            &mut tel,
        );
        (i, job, result, tel)
    });

    let mut rebuilt = 0usize;
    let mut first_error: Option<CoreError> = None;
    for (i, job, result, tel) in results {
        ctx.telemetry.merge_child(tel, Some(span));
        match result {
            Ok(derived) => {
                let (_, maintainer) = &mut fleet[i];
                maintainer.accumulator =
                    ModelAccumulator::from_observations(&derived.model, &derived.observations);
                maintainer.derived = derived;
                maintainer.monitor.reset();
                maintainer.rederivations += 1;
                ctx.telemetry.inc("maintenance.rederivations", 1);
                if let Some(registry) = registry {
                    registry.publish(
                        job.site.clone(),
                        job.class,
                        maintainer.derived.model.clone(),
                    );
                }
                rebuilt += 1;
            }
            Err(e) => {
                if first_error.is_none() {
                    first_error = Some(e);
                }
            }
        }
    }
    ctx.telemetry
        .inc("pool.jobs_completed", report.jobs_completed as u64);
    ctx.telemetry.inc("pool.sched.steals", report.steals);
    ctx.telemetry
        .gauge("pool.sched.workers", report.workers as f64);
    ctx.telemetry.field(span, "rebuilt", rebuilt as u64);
    ctx.telemetry.end_span(span);
    match first_error {
        Some(e) => Err(e),
        None => Ok(rebuilt),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_monitor_reports_no_drift() {
        let m = DriftMonitor::new(MaintenanceConfig::default());
        assert!(!m.drifted());
        assert_eq!(m.good_fraction(), 1.0);
    }

    #[test]
    fn good_traffic_keeps_the_model() {
        let mut m = DriftMonitor::new(MaintenanceConfig::default());
        for i in 0..100 {
            let obs = 10.0 + (i % 5) as f64;
            m.record(obs, obs * 1.1);
        }
        assert!(!m.drifted());
        assert!(m.good_fraction() > 0.99);
    }

    #[test]
    fn sustained_bad_estimates_trigger_drift() {
        let mut m = DriftMonitor::new(MaintenanceConfig::default());
        for _ in 0..30 {
            m.record(10.0, 100.0); // 10x off.
        }
        assert!(m.drifted());
        assert!(m.good_fraction() < 0.1);
    }

    #[test]
    fn drift_needs_minimum_evidence() {
        let mut m = DriftMonitor::new(MaintenanceConfig {
            min_observations: 20,
            ..MaintenanceConfig::default()
        });
        for _ in 0..10 {
            m.record(10.0, 100.0);
        }
        assert!(!m.drifted(), "drift declared on too little evidence");
    }

    #[test]
    fn window_slides() {
        let mut m = DriftMonitor::new(MaintenanceConfig {
            window: 30,
            min_observations: 20,
            min_good_fraction: 0.5,
        });
        // Bad history...
        for _ in 0..30 {
            m.record(10.0, 1000.0);
        }
        assert!(m.drifted());
        // ...fully displaced by good recent traffic.
        for _ in 0..30 {
            m.record(10.0, 10.5);
        }
        assert!(!m.drifted());
        assert_eq!(m.observations(), 30);
    }

    #[test]
    fn reset_clears_evidence() {
        let mut m = DriftMonitor::new(MaintenanceConfig::default());
        for _ in 0..40 {
            m.record(10.0, 500.0);
        }
        assert!(m.drifted());
        m.reset();
        assert!(!m.drifted());
        assert_eq!(m.observations(), 0);
    }

    #[test]
    fn min_observations_above_window_is_clamped_so_drift_stays_detectable() {
        // Regression: the window caps the evidence deque, so a
        // min_observations above it used to make the gate unsatisfiable —
        // drift was silently undetectable forever. The monitor now clamps
        // the gate to the window.
        let mut m = DriftMonitor::new(MaintenanceConfig {
            window: 10,
            min_observations: 20,
            min_good_fraction: 0.5,
        });
        for _ in 0..100 {
            m.record(10.0, 1000.0);
        }
        assert_eq!(m.observations(), 10);
        assert_eq!(m.good_fraction(), 0.0);
        assert!(
            m.drifted(),
            "a full window of bad estimates must declare drift even when \
             min_observations was configured above the window"
        );
    }

    #[test]
    fn validated_clamps_degenerate_configs() {
        let v = MaintenanceConfig {
            window: 10,
            min_observations: 20,
            min_good_fraction: 1.5,
        }
        .clamped();
        assert_eq!(v.window, 10);
        assert_eq!(v.min_observations, 10);
        assert_eq!(v.min_good_fraction, 1.0);

        let v = MaintenanceConfig {
            window: 0,
            min_observations: 0,
            min_good_fraction: -0.5,
        }
        .clamped();
        assert_eq!(v.window, 1);
        assert_eq!(v.min_observations, 1);
        assert_eq!(v.min_good_fraction, 0.0);

        // A sane config passes through untouched.
        let sane = MaintenanceConfig::default();
        assert_eq!(sane.clone().clamped(), sane);
    }

    #[test]
    fn maintenance_builder_accepts_sane_and_rejects_inconsistent() {
        let built = MaintenanceConfig::builder()
            .window(20)
            .min_observations(8)
            .min_good_fraction(0.65)
            .build()
            .expect("sane knobs build");
        assert_eq!(built.window, 20);
        assert_eq!(built.min_observations, 8);
        assert_eq!(built.min_good_fraction, 0.65);
        assert_eq!(
            MaintenanceConfig::builder()
                .build()
                .expect("defaults build"),
            MaintenanceConfig::default()
        );
        for (name, b) in [
            ("window", MaintenanceConfig::builder().window(0)),
            (
                "min_obs_zero",
                MaintenanceConfig::builder().min_observations(0),
            ),
            (
                "min_obs_above_window",
                MaintenanceConfig::builder().window(10).min_observations(20),
            ),
            (
                "fraction",
                MaintenanceConfig::builder().min_good_fraction(1.5),
            ),
        ] {
            assert!(
                matches!(b.build(), Err(CoreError::Degenerate(_))),
                "{name} must be rejected"
            );
        }
    }

    #[test]
    fn good_fraction_on_empty_window_is_one() {
        let mut m = DriftMonitor::new(MaintenanceConfig::default());
        assert_eq!(m.good_fraction(), 1.0);
        m.record(10.0, 1000.0);
        assert_eq!(m.good_fraction(), 0.0);
        m.reset();
        // Back to the optimistic prior after reset, too.
        assert_eq!(m.good_fraction(), 1.0);
    }

    #[test]
    fn reset_after_drift_requires_fresh_evidence_to_redrift() {
        let mut m = DriftMonitor::new(MaintenanceConfig {
            window: 30,
            min_observations: 20,
            min_good_fraction: 0.5,
        });
        for _ in 0..25 {
            m.record(10.0, 1000.0);
        }
        assert!(m.drifted());
        m.reset();
        // 19 bad estimates: still one short of the evidence gate.
        for _ in 0..19 {
            m.record(10.0, 1000.0);
        }
        assert!(!m.drifted());
        m.record(10.0, 1000.0);
        assert!(m.drifted(), "the 20th bad estimate crosses the gate");
    }
}
