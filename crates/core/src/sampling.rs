//! Sample-query generation and sample-size rules (paper §4.1).
//!
//! Sample queries are drawn per class so that every query in the sample
//! would be *classified* into that class (same observable criteria as
//! [`classes::classify`](crate::classes::classify)); sizes follow the
//! paper's Proposition 4.1 — "sample at least 10 observations for every
//! parameter to be estimated" — and its practical eq. (4), which budgets
//! for the basic variables, about half the secondary variables, the
//! intercept, and the maximum number of contention states.

use crate::classes::QueryClass;
use crate::variables::VariableFamily;
use mdbs_sim::catalog::{IndexKind, LocalCatalog, TableDef};
use mdbs_sim::query::{JoinQuery, Predicate, Query, UnaryQuery};
use mdbs_stats::rng::Rng;

/// Proposition 4.1: the general qualitative model with `p` quantitative
/// variables and `m` states has `(p + 1)·m` coefficients plus the error
/// variance; the 10-observations-per-parameter rule then demands at least
/// `10·(p + 1)·m + 1` observations.
pub fn minimum_sample_size(p: usize, m: usize) -> usize {
    10 * (p + 1) * m + 1
}

/// Eq. (4): a practical sample size budgeted *before* selection has run —
/// expect most basic variables and about half the secondary ones to be
/// selected, for up to `m_max` contention states.
pub fn planned_sample_size(family: VariableFamily, m_max: usize) -> usize {
    let b = family.basic_indexes().len();
    let s = family.secondary_indexes().len();
    let p_expected = b + s.div_ceil(2);
    minimum_sample_size(p_expected, m_max.max(1))
}

/// A deterministic per-class query generator.
#[derive(Debug, Clone)]
pub struct SampleGenerator {
    rng: Rng,
    /// Largest operand cardinality allowed for join samples (joins over the
    /// quarter-million-tuple tables would dominate wall-clock for little
    /// statistical benefit; the paper's join workloads are similar).
    pub max_join_card: u64,
}

impl SampleGenerator {
    /// A generator with its own seed (distinct seeds → distinct workloads).
    pub fn new(seed: u64) -> Self {
        SampleGenerator {
            rng: Rng::seed_from_u64(seed),
            max_join_card: 60_000,
        }
    }

    /// Generates one query guaranteed to belong to `class`.
    pub fn generate(&mut self, class: QueryClass, catalog: &LocalCatalog) -> Query {
        match class {
            QueryClass::UnaryNoIndex => self.unary_no_index(catalog),
            QueryClass::UnaryNonClusteredIndex => self.unary_nonclustered(catalog),
            QueryClass::UnaryClusteredIndex => self.unary_clustered(catalog),
            QueryClass::JoinNoIndex => self.join(catalog, false),
            QueryClass::JoinIndexed => self.join(catalog, true),
        }
    }

    /// Generates `n` queries of a class.
    pub fn generate_many(
        &mut self,
        class: QueryClass,
        catalog: &LocalCatalog,
        n: usize,
    ) -> Vec<Query> {
        (0..n).map(|_| self.generate(class, catalog)).collect()
    }

    fn pick_table<'a>(
        &mut self,
        catalog: &'a LocalCatalog,
        filter: impl Fn(&TableDef) -> bool,
    ) -> &'a TableDef {
        let candidates: Vec<&TableDef> = catalog.tables().iter().filter(|t| filter(t)).collect();
        assert!(!candidates.is_empty(), "no table matches the class filter");
        candidates[self.rng.gen_range(0..candidates.len())]
    }

    /// Columns of `t` without any index.
    fn unindexed_columns(t: &TableDef) -> Vec<usize> {
        t.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.index == IndexKind::None)
            .map(|(i, _)| i)
            .collect()
    }

    /// A range predicate on `col` with roughly the given selectivity,
    /// randomly positioned within the domain.
    fn range_predicate(&mut self, t: &TableDef, col: usize, selectivity: f64) -> Predicate {
        let domain = t.columns[col].domain_max;
        let width = ((domain as f64 + 1.0) * selectivity).round().max(1.0) as u64;
        let max_lo = domain.saturating_sub(width.saturating_sub(1));
        let lo = if max_lo == 0 {
            0
        } else {
            self.rng.gen_range(0..=max_lo)
        };
        Predicate::between(col, lo, lo + width - 1)
    }

    fn random_projection(&mut self, t: &TableDef) -> Vec<usize> {
        let k = self.rng.gen_range(1..=t.columns.len());
        let mut cols: Vec<usize> = (0..t.columns.len()).collect();
        // Partial Fisher–Yates: take the first k of a shuffle.
        for i in 0..k {
            let j = self.rng.gen_range(i..cols.len());
            cols.swap(i, j);
        }
        cols.truncate(k);
        cols.sort_unstable();
        cols
    }

    /// Extra (non-index-usable) predicates on unindexed columns.
    fn extra_predicates(&mut self, t: &TableDef, count: usize) -> Vec<Predicate> {
        let pool = Self::unindexed_columns(t);
        (0..count.min(pool.len()))
            .map(|i| {
                let sel = self.rng.gen_range(0.15..0.9);
                self.range_predicate(t, pool[i], sel)
            })
            .collect()
    }

    /// About a third of unary samples order their result — the SORT
    /// candidate variable needs exercise to be selectable.
    fn random_order_by(&mut self, t: &TableDef) -> Option<usize> {
        if self.rng.gen_bool(1.0 / 3.0) {
            Some(self.rng.gen_range(0..t.columns.len()))
        } else {
            None
        }
    }

    fn unary_no_index(&mut self, catalog: &LocalCatalog) -> Query {
        let t = self.pick_table(catalog, |_| true);
        let n_preds = self.rng.gen_range(1..=3usize);
        let predicates = self.extra_predicates(t, n_preds);
        Query::Unary(UnaryQuery {
            table: t.id,
            projection: self.random_projection(t),
            predicates,
            order_by: self.random_order_by(t),
        })
    }

    fn unary_nonclustered(&mut self, catalog: &LocalCatalog) -> Query {
        // a3 (column index 2) carries a non-clustered index on every table.
        let t = self.pick_table(catalog, |t| t.columns[2].index == IndexKind::NonClustered);
        let sel = self.rng.gen_range(0.004..0.09);
        let mut predicates = vec![self.range_predicate(t, 2, sel)];
        let extra = self.rng.gen_range(0..=2usize);
        predicates.extend(self.extra_predicates(t, extra));
        Query::Unary(UnaryQuery {
            table: t.id,
            projection: self.random_projection(t),
            predicates,
            order_by: self.random_order_by(t),
        })
    }

    fn unary_clustered(&mut self, catalog: &LocalCatalog) -> Query {
        let t = self.pick_table(catalog, |t| t.clustered_column().is_some());
        let col = t.clustered_column().expect("filtered on clustered index");
        let sel = self.rng.gen_range(0.02..0.6);
        let mut predicates = vec![self.range_predicate(t, col, sel)];
        let extra = self.rng.gen_range(0..=2usize);
        predicates.extend(self.extra_predicates(t, extra));
        Query::Unary(UnaryQuery {
            table: t.id,
            projection: self.random_projection(t),
            predicates,
            order_by: self.random_order_by(t),
        })
    }

    fn join(&mut self, catalog: &LocalCatalog, indexed: bool) -> Query {
        let max_card = self.max_join_card;
        let left = self.pick_table(catalog, |t| t.cardinality <= max_card);
        let right_id = loop {
            let c = self.pick_table(catalog, |t| t.cardinality <= max_card);
            if c.id != left.id {
                break c.id;
            }
        };
        let right = catalog.table(right_id).expect("just picked");
        // Columns 4..6 (a5, a6, a7) are unindexed everywhere; column 2
        // (a3) is indexed. Varying the join column varies the join-column
        // domains and therefore the result-size coverage of the sample —
        // important so the model is not asked to extrapolate later.
        let unindexed_join_col = self.rng.gen_range(4..=6usize);
        let (left_col, right_col) = if indexed {
            (unindexed_join_col, 2)
        } else {
            (unindexed_join_col, unindexed_join_col)
        };
        let lp = self.rng.gen_range(0..=2usize);
        let rp = self.rng.gen_range(0..=2usize);
        let left_predicates = self.filtered_join_preds(left, left_col, lp);
        let right_predicates = self.filtered_join_preds(right, right_col, rp);
        let projection = vec![(true, 0), (true, 4), (false, 1)];
        Query::Join(JoinQuery {
            left: left.id,
            right: right.id,
            left_col,
            right_col,
            left_predicates,
            right_predicates,
            projection,
        })
    }

    fn filtered_join_preds(
        &mut self,
        t: &TableDef,
        join_col: usize,
        count: usize,
    ) -> Vec<Predicate> {
        let pool: Vec<usize> = Self::unindexed_columns(t)
            .into_iter()
            .filter(|&c| c != join_col) // Keep the join column predicate-free.
            .collect();
        (0..count.min(pool.len()))
            .map(|i| {
                let sel = self.rng.gen_range(0.1..0.7);
                self.range_predicate(t, pool[i], sel)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::classify;
    use mdbs_sim::datagen::standard_database;

    #[test]
    fn sizes_follow_the_rule_of_ten() {
        assert_eq!(minimum_sample_size(3, 1), 41);
        assert_eq!(minimum_sample_size(3, 4), 161);
        // Eq. (4) for the unary family, m_max = 6: p_exp = 3 basic +
        // ceil(5/2) secondary (incl. the SORT extension) = 6.
        assert_eq!(planned_sample_size(VariableFamily::Unary, 6), 421);
        // Join family: p_exp = 6 + 3 = 9.
        assert_eq!(planned_sample_size(VariableFamily::Join, 6), 601);
    }

    #[test]
    fn generated_queries_classify_into_their_class() {
        let db = standard_database(42);
        let mut g = SampleGenerator::new(7);
        for class in QueryClass::all() {
            for _ in 0..50 {
                let q = g.generate(class, &db);
                assert_eq!(
                    classify(&db, &q),
                    Some(class),
                    "query {q:?} misclassified for {class:?}"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let db = standard_database(42);
        let a = SampleGenerator::new(3).generate_many(QueryClass::UnaryNoIndex, &db, 5);
        let b = SampleGenerator::new(3).generate_many(QueryClass::UnaryNoIndex, &db, 5);
        assert_eq!(a, b);
        let c = SampleGenerator::new(4).generate_many(QueryClass::UnaryNoIndex, &db, 5);
        assert_ne!(a, c);
    }

    #[test]
    fn workload_varies_tables_and_predicates() {
        let db = standard_database(42);
        let mut g = SampleGenerator::new(5);
        let queries = g.generate_many(QueryClass::UnaryNoIndex, &db, 60);
        let tables: std::collections::BTreeSet<_> = queries.iter().map(|q| q.tables()[0]).collect();
        assert!(tables.len() > 5, "only {} distinct tables", tables.len());
        let pred_counts: std::collections::BTreeSet<_> = queries
            .iter()
            .map(|q| match q {
                Query::Unary(u) => u.predicates.len(),
                _ => 0,
            })
            .collect();
        assert!(pred_counts.len() >= 2, "predicate counts do not vary");
    }

    #[test]
    fn join_samples_respect_cardinality_cap() {
        let db = standard_database(42);
        let mut g = SampleGenerator::new(6);
        for q in g.generate_many(QueryClass::JoinNoIndex, &db, 40) {
            for tid in q.tables() {
                assert!(db.table(tid).unwrap().cardinality <= g.max_join_card);
            }
        }
    }

    #[test]
    fn range_predicates_hit_target_selectivity() {
        let db = standard_database(42);
        let mut g = SampleGenerator::new(9);
        let t = &db.tables()[4];
        for _ in 0..100 {
            let p = g.range_predicate(t, 5, 0.25);
            let sel = mdbs_sim::selectivity::predicate_selectivity(t, &p);
            assert!((sel - 0.25).abs() < 0.02, "selectivity {sel}");
        }
    }
}
