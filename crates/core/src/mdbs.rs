//! The MDBS façade: multiple autonomous local sites behind one handle.
//!
//! [`Mdbs`] owns the per-site agents, the global catalog and the network
//! parameters, and closes the loop the paper motivates: derive cost models
//! per site, *plan* a global join with them, and then actually *execute*
//! the chosen plan — filter at the shipping site, move the intermediate,
//! register a temporary table at the destination and run the join there —
//! so the estimated and the realized plan costs can be compared. "Based on
//! the estimated local costs, the global query optimizer chooses a good
//! execution plan" (paper §1); with execution in hand, "good" becomes
//! measurable.

use crate::catalog::{GlobalCatalog, SiteId};
use crate::classes::QueryClass;
use crate::derive::{derive_cost_model, DerivationConfig};
use crate::optimizer::{temp_table, GlobalJoin, GlobalOptimizer, PlanEstimate};
use crate::states::StateAlgorithm;
use crate::CoreError;
use mdbs_sim::query::{JoinQuery, Query, UnaryQuery};
use mdbs_sim::selectivity::unary_sizes;
use mdbs_sim::MdbsAgent;

/// The realized (observed) costs of executing a global join plan.
#[derive(Debug, Clone)]
pub struct GlobalExecution {
    /// Where the join ran.
    pub join_site: SiteId,
    /// Observed cost of the filtering query at the shipping site.
    pub ship_prepare_cost: f64,
    /// Megabytes actually shipped.
    pub transfer_mb: f64,
    /// Network transfer cost (deterministic: volume × rate).
    pub transfer_cost: f64,
    /// Observed cost of the join at the destination.
    pub join_cost: f64,
    /// Result cardinality of the join.
    pub result_card: u64,
}

impl GlobalExecution {
    /// Total realized elapsed cost.
    pub fn total(&self) -> f64 {
        self.ship_prepare_cost + self.transfer_cost + self.join_cost
    }
}

/// A multidatabase system: named local sites, a global catalog, a network.
#[derive(Debug)]
pub struct Mdbs {
    sites: Vec<(SiteId, MdbsAgent)>,
    /// Derived cost models (fed by [`Mdbs::derive`]).
    pub catalog: GlobalCatalog,
    /// Network transfer cost in seconds per megabyte.
    pub network_s_per_mb: f64,
}

impl Mdbs {
    /// An MDBS with no sites yet.
    pub fn new(network_s_per_mb: f64) -> Self {
        Mdbs {
            sites: Vec::new(),
            catalog: GlobalCatalog::new(),
            network_s_per_mb,
        }
    }

    /// Registers a local site. Panics on duplicate ids (a wiring bug).
    pub fn add_site(&mut self, id: impl Into<SiteId>, agent: MdbsAgent) {
        let id = id.into();
        assert!(self.agent(&id).is_none(), "duplicate site id {id}");
        self.sites.push((id, agent));
    }

    /// All site ids, in registration order.
    pub fn site_ids(&self) -> Vec<SiteId> {
        self.sites.iter().map(|(s, _)| s.clone()).collect()
    }

    /// The agent of a site.
    pub fn agent(&self, id: &SiteId) -> Option<&MdbsAgent> {
        self.sites.iter().find(|(s, _)| s == id).map(|(_, a)| a)
    }

    /// Mutable access to a site's agent.
    pub fn agent_mut(&mut self, id: &SiteId) -> Option<&mut MdbsAgent> {
        self.sites.iter_mut().find(|(s, _)| s == id).map(|(_, a)| a)
    }

    fn agent_mut_or_err(&mut self, id: &SiteId) -> Result<&mut MdbsAgent, CoreError> {
        self.agent_mut(id)
            .ok_or_else(|| CoreError::Agent(format!("unknown site {id}")))
    }

    /// Derives (and stores) a cost model for one class at one site.
    pub fn derive(
        &mut self,
        site: &SiteId,
        class: QueryClass,
        algorithm: StateAlgorithm,
        cfg: &DerivationConfig,
        seed: u64,
    ) -> Result<(), CoreError> {
        let keep_probe = cfg.fit_probe_estimator;
        let agent = self.agent_mut_or_err(site)?;
        let derived = derive_cost_model(
            agent,
            class,
            algorithm,
            cfg,
            &mut crate::pipeline::PipelineCtx::seeded(seed),
        )?;
        self.catalog
            .insert_model(site.clone(), class, derived.model);
        if keep_probe {
            if let Some(est) = derived.probe_estimator {
                self.catalog.insert_probe_estimator(site.clone(), est);
            }
        }
        Ok(())
    }

    /// Probes every site's current contention level.
    pub fn probe_all(&mut self) -> Vec<(SiteId, f64)> {
        self.sites
            .iter_mut()
            .map(|(s, a)| (s.clone(), a.probe()))
            .collect()
    }

    /// Plans a global join against the *current* contention (one probe per
    /// site). Plans are sorted cheapest-first.
    pub fn plan_global_join(&mut self, join: &GlobalJoin) -> Result<Vec<PlanEstimate>, CoreError> {
        let probes = self.probe_all();
        let schemas: Vec<(SiteId, mdbs_sim::LocalCatalog)> = self
            .sites
            .iter()
            .map(|(s, a)| (s.clone(), a.catalog().clone()))
            .collect();
        let schema_refs: Vec<(SiteId, &mdbs_sim::LocalCatalog)> =
            schemas.iter().map(|(s, c)| (s.clone(), c)).collect();
        let optimizer = GlobalOptimizer::new(self.catalog.clone(), self.network_s_per_mb);
        optimizer.plan_join(join, &schema_refs, &probes)
    }

    /// Executes a global join with the join at `plan.join_site`:
    /// runs the filter at the shipping site, accounts the transfer,
    /// registers a temporary table at the destination, runs the join there
    /// and drops the temporary table again.
    pub fn execute_plan(
        &mut self,
        join: &GlobalJoin,
        plan: &PlanEstimate,
    ) -> Result<GlobalExecution, CoreError> {
        let (dest, shipped) = if plan.join_site == join.left.site {
            (&join.left, &join.right)
        } else if plan.join_site == join.right.site {
            (&join.right, &join.left)
        } else {
            return Err(CoreError::Agent(format!(
                "plan's join site {} is not part of the join",
                plan.join_site
            )));
        };
        let (dest, shipped) = (dest.clone(), shipped.clone());

        // Step 1: filter at the shipping site (observed cost).
        let shipped_agent = self.agent_mut_or_err(&shipped.site)?;
        let shipped_table = shipped_agent
            .catalog()
            .table(shipped.table)
            .ok_or_else(|| CoreError::Agent(format!("unknown table {}", shipped.table)))?
            .clone();
        let filter = UnaryQuery {
            table: shipped.table,
            projection: vec![],
            predicates: shipped.predicates.clone(),
            order_by: None,
        };
        let exec_filter = shipped_agent
            .run(&Query::Unary(filter.clone()))
            .map_err(|e| CoreError::Agent(e.to_string()))?;
        let shipped_card = unary_sizes(&shipped_table, &filter).result;

        // Step 2: transfer (deterministic volume × rate).
        let transfer_mb =
            shipped_card as f64 * shipped_table.tuple_len() as f64 / (1024.0 * 1024.0);
        let transfer_cost = transfer_mb * self.network_s_per_mb;

        // Step 3: join at the destination against the temp table.
        let temp = temp_table(&shipped_table, shipped_card);
        let temp_id = temp.id;
        let dest_agent = self.agent_mut_or_err(&dest.site)?;
        dest_agent.register_table(temp);
        let join_query = Query::Join(JoinQuery {
            left: dest.table,
            right: temp_id,
            left_col: dest.join_col,
            right_col: shipped.join_col,
            left_predicates: dest.predicates.clone(),
            right_predicates: Vec::new(),
            projection: vec![(true, 0), (false, 0)],
        });
        let exec_join = dest_agent.run(&join_query);
        dest_agent.drop_table(temp_id);
        let exec_join = exec_join.map_err(|e| CoreError::Agent(e.to_string()))?;
        let result_card = match exec_join.sizes {
            mdbs_sim::agent::ExecutionSizes::Join(s) => s.result,
            mdbs_sim::agent::ExecutionSizes::Unary(s) => s.result,
        };

        Ok(GlobalExecution {
            join_site: dest.site.clone(),
            ship_prepare_cost: exec_filter.cost_s,
            transfer_mb,
            transfer_cost,
            join_cost: exec_join.cost_s,
            result_card,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::JoinOperand;
    use mdbs_sim::contention::Load;
    use mdbs_sim::datagen::standard_database;
    use mdbs_sim::VendorProfile;

    fn two_site_mdbs() -> Mdbs {
        let mut mdbs = Mdbs::new(0.08);
        mdbs.add_site(
            "oracle",
            MdbsAgent::new(VendorProfile::oracle8(), standard_database(42), 3),
        );
        mdbs.add_site(
            "db2",
            MdbsAgent::new(VendorProfile::db2v5(), standard_database(43), 4),
        );
        mdbs
    }

    fn sample_join(mdbs: &Mdbs) -> GlobalJoin {
        let left_table = mdbs.agent(&"oracle".into()).unwrap().catalog().tables()[6].id;
        let right_table = mdbs.agent(&"db2".into()).unwrap().catalog().tables()[4].id;
        GlobalJoin {
            left: JoinOperand {
                site: "oracle".into(),
                table: left_table,
                join_col: 4,
                predicates: vec![],
            },
            right: JoinOperand {
                site: "db2".into(),
                table: right_table,
                join_col: 4,
                predicates: vec![],
            },
        }
    }

    #[test]
    fn sites_register_and_resolve() {
        let mdbs = two_site_mdbs();
        assert_eq!(mdbs.site_ids().len(), 2);
        assert!(mdbs.agent(&"oracle".into()).is_some());
        assert!(mdbs.agent(&"nope".into()).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate site id")]
    fn duplicate_site_panics() {
        let mut mdbs = two_site_mdbs();
        mdbs.add_site(
            "oracle",
            MdbsAgent::new(VendorProfile::oracle8(), standard_database(42), 9),
        );
    }

    #[test]
    fn execute_plan_runs_both_directions_and_cleans_up() {
        let mut mdbs = two_site_mdbs();
        for id in ["oracle", "db2"] {
            mdbs.agent_mut(&id.into())
                .unwrap()
                .set_load(Load::background(30.0));
        }
        let join = sample_join(&mdbs);
        let tables_before: usize = mdbs.agent(&"db2".into()).unwrap().catalog().tables().len();
        for site in ["oracle", "db2"] {
            let plan = PlanEstimate {
                join_site: site.into(),
                ship_prepare_cost: 0.0,
                transfer_mb: 0.0,
                transfer_cost: 0.0,
                join_cost: 0.0,
            };
            let exec = mdbs.execute_plan(&join, &plan).expect("plan executes");
            assert_eq!(exec.join_site, site.into());
            assert!(exec.total() > 0.0);
            assert!(exec.transfer_mb > 0.0);
        }
        // Temporary tables were dropped.
        assert_eq!(
            mdbs.agent(&"db2".into()).unwrap().catalog().tables().len(),
            tables_before
        );
    }

    #[test]
    fn derive_and_plan_through_the_facade() {
        use crate::derive::DerivationConfig;
        use crate::states::{StateAlgorithm, StatesConfig};
        use mdbs_sim::{ContentionProfile, LoadBuilder};

        let mut mdbs = two_site_mdbs();
        for id in ["oracle", "db2"] {
            let agent = mdbs.agent_mut(&id.into()).expect("site registered");
            agent.set_load_builder(LoadBuilder::new(ContentionProfile::Uniform {
                lo: 20.0,
                hi: 125.0,
            }));
        }
        let cfg = DerivationConfig {
            states: StatesConfig {
                max_states: 3,
                ..StatesConfig::default()
            },
            sample_size: Some(150),
            fit_probe_estimator: false,
            ..DerivationConfig::default()
        };
        for id in ["oracle", "db2"] {
            for class in [QueryClass::UnaryNoIndex, QueryClass::JoinNoIndex] {
                mdbs.derive(&id.into(), class, StateAlgorithm::Iupma, &cfg, 7)
                    .expect("derivation through the facade succeeds");
            }
        }
        assert_eq!(mdbs.catalog.len(), 4);

        let join = sample_join(&mdbs);
        let plans = mdbs.plan_global_join(&join).expect("planning succeeds");
        assert_eq!(plans.len(), 2);
        assert!(plans[0].total() <= plans[1].total());
        // The facade can then execute what it planned.
        let exec = mdbs
            .execute_plan(&join, &plans[0])
            .expect("chosen plan executes");
        assert!(exec.total() > 0.0);
    }

    #[test]
    fn executing_an_unrelated_site_fails() {
        let mut mdbs = two_site_mdbs();
        let join = sample_join(&mdbs);
        let plan = PlanEstimate {
            join_site: "elsewhere".into(),
            ship_prepare_cost: 0.0,
            transfer_mb: 0.0,
            transfer_cost: 0.0,
            join_cost: 0.0,
        };
        assert!(mdbs.execute_plan(&join, &plan).is_err());
    }
}
