//! A std-only scoped-thread worker pool for batch derivation.
//!
//! Per-site, per-class model derivations are independent (the paper's
//! pipeline touches one local site at a time), so a batch of them is
//! embarrassingly parallel. [`run_jobs`] fans indexed jobs out to scoped
//! worker threads — each worker owns a deque seeded round-robin and steals
//! from the back of its neighbours' when its own runs dry — and returns the
//! results **in job order**, so callers observe output independent of the
//! worker count or interleaving. Determinism therefore only requires that
//! each job's *inputs* (seeds, configs) not depend on scheduling; the
//! [`crate::derive::derive_all`] layer guarantees that by splitting per-job
//! RNG streams from the root seed with stable keys.
//!
//! Worker counts default to [`std::thread::available_parallelism`] and are
//! clamped to the job count; `Some(1)` degenerates to running every job on
//! one worker thread, which is the reference serial order.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What the pool did, for instrumentation.
///
/// `workers`, `steals` and the queue depths are **scheduling-dependent**:
/// when recorded as telemetry they must live under the `pool.sched.` metric
/// prefix (see [`mdbs_obs::telemetry::SCHEDULING_METRIC_PREFIXES`]) so that
/// determinism comparisons strip them. `jobs_completed` is deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolReport {
    /// Worker threads actually spawned.
    pub workers: usize,
    /// Jobs executed (always the full job count — the pool never drops).
    pub jobs_completed: usize,
    /// Cross-worker steals observed.
    pub steals: u64,
    /// Largest initial per-worker queue depth.
    pub max_queue_depth: usize,
}

/// Resolves a requested worker count: `None` → the machine's available
/// parallelism (1 when unknown); any request is clamped to `1..=jobs`
/// (zero jobs still yields one notional worker).
pub fn effective_workers(requested: Option<usize>, jobs: usize) -> usize {
    let available = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    requested.unwrap_or(available).clamp(1, jobs.max(1))
}

/// Runs every job on a pool of `workers` scoped threads and returns the
/// results in job order, plus a [`PoolReport`].
///
/// `f` receives the job's index and the job itself; it must not panic (a
/// panicking job propagates out of `run_jobs` once the scope unwinds).
// lint:allow(no-raw-threads): this file IS the sanctioned thread pool; everything else fans out through it
#[allow(clippy::disallowed_methods)]
pub fn run_jobs<J, R, F>(jobs: Vec<J>, workers: usize, f: F) -> (Vec<R>, PoolReport)
where
    J: Send,
    R: Send,
    F: Fn(usize, J) -> R + Sync,
{
    let total = jobs.len();
    let workers = workers.clamp(1, total.max(1));

    // Deal jobs round-robin into per-worker deques.
    let queues: Vec<Mutex<VecDeque<(usize, J)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (index, job) in jobs.into_iter().enumerate() {
        queues[index % workers]
            .lock()
            .expect("queue lock")
            .push_back((index, job));
    }
    let max_queue_depth = queues
        .iter()
        .map(|q| q.lock().expect("queue lock").len())
        .max()
        .unwrap_or(0);

    let slots: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let steals = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let steals = &steals;
            let f = &f;
            scope.spawn(move || loop {
                // Own work first (front), then steal from a neighbour's back.
                let mut next = queues[me].lock().expect("queue lock").pop_front();
                if next.is_none() {
                    for other in (0..workers).filter(|&w| w != me) {
                        let stolen = queues[other].lock().expect("queue lock").pop_back();
                        if stolen.is_some() {
                            steals.fetch_add(1, Ordering::Relaxed);
                            next = stolen;
                            break;
                        }
                    }
                }
                let Some((index, job)) = next else { return };
                *slots[index].lock().expect("result slot") = Some(f(index, job));
            });
        }
    });

    let results: Vec<R> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot")
                .expect("every job produces a result")
        })
        .collect();
    let report = PoolReport {
        workers,
        jobs_completed: total,
        steals: steals.into_inner(),
        max_queue_depth,
    };
    (results, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order_regardless_of_workers() {
        let jobs: Vec<u64> = (0..40).collect();
        let expected: Vec<u64> = jobs.iter().map(|j| j * j).collect();
        for workers in [1, 2, 3, 8] {
            let (results, report) = run_jobs(jobs.clone(), workers, |_, j| j * j);
            assert_eq!(results, expected, "workers={workers}");
            assert_eq!(report.jobs_completed, 40);
            assert_eq!(report.workers, workers);
        }
    }

    #[test]
    fn index_argument_matches_job_position() {
        let jobs = vec!["a", "b", "c"];
        let (results, _) = run_jobs(jobs, 2, |i, j| format!("{i}:{j}"));
        assert_eq!(results, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let (results, report) = run_jobs(vec![1, 2], 8, |_, j| j + 1);
        assert_eq!(results, vec![2, 3]);
        assert_eq!(report.workers, 2, "workers clamp to the job count");
    }

    #[test]
    fn empty_job_list_returns_empty() {
        let (results, report) = run_jobs(Vec::<u8>::new(), 4, |_, j| j);
        assert!(results.is_empty());
        assert_eq!(report.jobs_completed, 0);
    }

    #[test]
    fn queue_depth_reflects_round_robin_deal() {
        let (_, report) = run_jobs((0..10).collect::<Vec<u32>>(), 4, |_, j| j);
        // ceil(10 / 4) = 3 jobs on the fullest queue.
        assert_eq!(report.max_queue_depth, 3);
    }

    #[test]
    fn effective_workers_clamps_and_defaults() {
        assert_eq!(effective_workers(Some(4), 10), 4);
        assert_eq!(effective_workers(Some(0), 10), 1);
        assert_eq!(effective_workers(Some(99), 3), 3);
        assert_eq!(effective_workers(Some(2), 0), 1);
        assert!(effective_workers(None, 64) >= 1);
    }
}
