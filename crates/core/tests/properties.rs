//! Property-style tests for the multi-states method's core data structures
//! and invariants, run as seeded deterministic case sweeps over the
//! in-tree [`Rng`].

use mdbs_core::model::{counts_per_state, fit_cost_model, CostModel, FitStats, ModelForm};
use mdbs_core::observation::Observation;
use mdbs_core::qualvar::StateSet;
use mdbs_core::sampling::minimum_sample_size;
use mdbs_core::validate::TestPoint;
use mdbs_stats::rng::Rng;

#[test]
fn uniform_partition_covers_range() {
    let mut rng = Rng::seed_from_u64(0xC0E1);
    for _ in 0..300 {
        let c_min = rng.gen_range(-100.0f64..100.0);
        let width = rng.gen_range(0.001f64..1000.0);
        let m = rng.gen_range(1usize..12);
        let c_max = c_min + width;
        let s = StateSet::uniform(c_min, c_max, m).unwrap();
        assert_eq!(s.len(), m);
        let edges = s.edges();
        if m > 1 {
            assert_eq!(edges[0], c_min);
            assert_eq!(edges[m], c_max);
        }
        // Edges strictly increasing.
        for w in edges.windows(2) {
            assert!(w[1] > w[0]);
        }
    }
}

#[test]
fn state_lookup_is_total_and_monotone() {
    let mut rng = Rng::seed_from_u64(0x70DE);
    for _ in 0..200 {
        let c_min = rng.gen_range(0.0f64..10.0);
        let width = rng.gen_range(0.1f64..100.0);
        let m = rng.gen_range(1usize..10);
        let n_probes = rng.gen_range(1usize..50);
        let probes: Vec<f64> = (0..n_probes)
            .map(|_| rng.gen_range(-50.0f64..200.0))
            .collect();
        let s = StateSet::uniform(c_min, c_min + width, m).unwrap();
        let mut sorted = probes.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0usize;
        for (i, p) in sorted.iter().enumerate() {
            let st = s.state_of(*p);
            assert!(st < m);
            if i > 0 {
                assert!(st >= prev, "lookup not monotone");
            }
            prev = st;
        }
    }
}

#[test]
fn indicators_are_one_hot() {
    let mut rng = Rng::seed_from_u64(0x10E0);
    for _ in 0..300 {
        let m = rng.gen_range(1usize..10);
        let probe = rng.gen_range(-10.0f64..110.0);
        let s = StateSet::uniform(0.0, 100.0, m).unwrap();
        let st = s.state_of(probe);
        let z = s.indicators(st);
        assert_eq!(z.len(), m - 1);
        let ones = z.iter().filter(|&&v| v == 1.0).count();
        assert!(ones <= 1);
        // State 0 is the reference (all zeros); others set exactly one.
        assert_eq!(ones, usize::from(st > 0));
    }
}

#[test]
fn merging_reduces_state_count_and_preserves_cover() {
    let mut rng = Rng::seed_from_u64(0x3E6);
    for _ in 0..300 {
        let m = rng.gen_range(2usize..10);
        let at_frac = rng.gen_range(0.0f64..1.0);
        let s = StateSet::uniform(0.0, 100.0, m).unwrap();
        let at = ((at_frac * (m - 1) as f64) as usize).min(m - 2);
        let merged = s.merge_with_next(at).unwrap();
        assert_eq!(merged.len(), m - 1);
        assert_eq!(merged.edges()[0], s.edges()[0]);
        assert_eq!(*merged.edges().last().unwrap(), *s.edges().last().unwrap());
    }
}

#[test]
fn counts_per_state_total() {
    let mut rng = Rng::seed_from_u64(0xC07);
    for _ in 0..200 {
        let m = rng.gen_range(1usize..8);
        let n_probes = rng.gen_range(1usize..80);
        let s = StateSet::uniform(0.0, 100.0, m).unwrap();
        let obs: Vec<Observation> = (0..n_probes)
            .map(|_| Observation {
                x: vec![1.0],
                cost: 1.0,
                probe_cost: rng.gen_range(0.0f64..100.0),
            })
            .collect();
        let counts = counts_per_state(&s, &obs);
        assert_eq!(counts.len(), m);
        assert_eq!(counts.iter().sum::<usize>(), obs.len());
    }
}

/// Fitting noiseless per-state-linear data with the general form must
/// recover the ground truth and estimate consistently.
#[test]
fn general_fit_recovers_ground_truth() {
    let mut rng = Rng::seed_from_u64(0x6F17);
    for _ in 0..100 {
        let m = rng.gen_range(2usize..4);
        let intercepts: Vec<f64> = (0..m).map(|_| rng.gen_range(-50.0f64..50.0)).collect();
        let slopes: Vec<f64> = (0..m).map(|_| rng.gen_range(-5.0f64..5.0)).collect();
        let states = StateSet::uniform(0.0, m as f64, m).unwrap();
        let mut obs = Vec::new();
        for s in 0..m {
            for i in 0..12 {
                let x = i as f64;
                obs.push(Observation {
                    x: vec![x],
                    cost: intercepts[s] + slopes[s] * x,
                    probe_cost: s as f64 + 0.1 + (i % 5) as f64 * 0.15,
                });
            }
        }
        let model =
            fit_cost_model(ModelForm::General, states, vec![0], vec!["x".into()], &obs).unwrap();
        for s in 0..m {
            assert!((model.coefficients[s][0] - intercepts[s]).abs() < 1e-6);
            assert!((model.coefficients[s][1] - slopes[s]).abs() < 1e-6);
        }
        assert!(model.fit.see < 1e-6);
        // estimate() agrees with the per-state equation.
        for s in 0..m {
            let probe = s as f64 + 0.5;
            let est = model.estimate(&[3.0], probe);
            assert!((est - (intercepts[s] + slopes[s] * 3.0)).abs() < 1e-6);
        }
    }
}

#[test]
fn estimates_are_finite_for_any_probe() {
    let mut rng = Rng::seed_from_u64(0xF17E);
    let states = StateSet::uniform(0.0, 10.0, 3).unwrap();
    let obs: Vec<Observation> = (0..60)
        .map(|i| Observation {
            x: vec![(i % 10) as f64],
            cost: 1.0 + (i % 10) as f64 * (1.0 + (i % 3) as f64),
            probe_cost: (i % 10) as f64 + 0.05,
        })
        .collect();
    let model =
        fit_cost_model(ModelForm::General, states, vec![0], vec!["x".into()], &obs).unwrap();
    for _ in 0..500 {
        let probe = rng.gen_range(-1e6f64..1e6);
        let x = rng.gen_range(-1e6f64..1e6);
        assert!(model.estimate(&[x], probe).is_finite());
    }
}

#[test]
fn sample_size_rule_is_monotone() {
    let mut rng = Rng::seed_from_u64(0x5A3E);
    for _ in 0..300 {
        let p1 = rng.gen_range(0usize..20);
        let p2 = rng.gen_range(0usize..20);
        let m = rng.gen_range(1usize..10);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        assert!(minimum_sample_size(lo, m) <= minimum_sample_size(hi, m));
        assert!(minimum_sample_size(lo, m) <= minimum_sample_size(lo, m + 1));
        // At least ten observations per coefficient.
        assert!(minimum_sample_size(lo, m) > 10 * (lo + 1) * m);
    }
}

#[test]
fn goodness_bands_are_consistent() {
    let mut rng = Rng::seed_from_u64(0x600D);
    for _ in 0..500 {
        let obs_cost = rng.gen_range(0.001f64..1e6);
        let factor = rng.gen_range(0.01f64..100.0);
        let p = TestPoint {
            observed: obs_cost,
            estimated: obs_cost * factor,
            result_card: 0,
            probe_cost: 1.0,
        };
        if p.is_very_good() {
            assert!(p.is_good());
        }
        // The good band is exactly the factor-2 band (plus very-good).
        let expected_good = (0.5..=2.0).contains(&factor) || (factor - 1.0).abs() <= 0.30;
        assert_eq!(p.is_good(), expected_good, "factor {factor}");
    }
}

/// Catalog persistence round-trips arbitrary models exactly.
#[test]
fn persist_roundtrip_arbitrary_models() {
    let mut rng = Rng::seed_from_u64(0x9E85);
    for _ in 0..200 {
        let n_edges = rng.gen_range(2usize..8);
        let edges_raw: std::collections::BTreeSet<i64> = (0..n_edges)
            .map(|_| rng.gen_range(0u64..2000) as i64 - 1000)
            .collect();
        if edges_raw.len() < 2 {
            continue;
        }
        let p = rng.gen_range(1usize..5);
        let coef = rng.gen_range(-1e6f64..1e6);
        let r2 = rng.gen_range(0.0f64..1.0);
        let edges: Vec<f64> = edges_raw.iter().map(|&e| e as f64 * 0.37).collect();
        let states = StateSet::from_edges(edges).unwrap();
        let m = states.len();
        let coefficients: Vec<Vec<f64>> = (0..m)
            .map(|s| {
                (0..=p)
                    .map(|j| coef * (s as f64 + 1.0) / (j as f64 + 1.0) + j as f64 * 1e-7)
                    .collect()
            })
            .collect();
        let model = CostModel {
            form: ModelForm::General,
            states,
            var_indexes: (0..p).collect(),
            var_names: (0..p).map(|i| format!("V{i}")).collect(),
            coefficients,
            fit: FitStats {
                r_squared: r2,
                adj_r_squared: r2 * 0.99,
                see: coef.abs() * 0.01 + 0.5,
                f_statistic: 12.5,
                f_p_value: 1.0 - r2,
                n: 100,
                k: (p + 1) * m,
            },
        };
        let text = model.to_catalog_entry();
        let back = CostModel::from_catalog_entry(&text).unwrap();
        assert_eq!(back, model);
    }
}
