//! The `expired-deprecation` pass.
//!
//! The tree's deprecation policy is "one release of grace": a shim kept
//! for compatibility must carry `#[deprecated(since = "X.Y.Z", note =
//! "…")]`, and once the workspace version moves past `since` the shim must
//! go. This pass enforces both halves: a `#[deprecated]` attribute without
//! a parseable `since` version is a finding (nothing tracks its age), and
//! one whose `since` is older than the current workspace version is a
//! finding (the grace release has shipped). An item deprecated *in* the
//! current version is still within its grace period.

use crate::rules::{push_unless_waived, EXPIRED_DEPRECATION};
use crate::{AnalyzedFile, Finding};

/// Parses `x.y.z` into a comparable triple.
fn semver(s: &str) -> Option<(u64, u64, u64)> {
    let mut parts = s.split('.');
    let maj = parts.next()?.parse().ok()?;
    let min = parts.next()?.parse().ok()?;
    let pat = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some((maj, min, pat))
}

/// Extracts the `[workspace.package] version` from the root manifest.
pub fn workspace_version(root_manifest: &str) -> Option<String> {
    let mut in_section = false;
    for line in root_manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_section = line == "[workspace.package]";
            continue;
        }
        if in_section {
            if let Some(rest) = line.strip_prefix("version") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    return Some(rest.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Runs the deprecation-expiry pass against `current_version` (the
/// workspace version, `x.y.z`).
pub fn check_deprecations(files: &[AnalyzedFile], current_version: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(current) = semver(current_version) else {
        return findings; // unparseable workspace version: nothing to compare
    };
    for f in files {
        let toks = &f.scanned.tokens;
        let n = toks.len();
        for i in 0..n.saturating_sub(2) {
            if !(toks[i].text == "#" && toks[i + 1].text == "[" && toks[i + 2].text == "deprecated")
            {
                continue;
            }
            let line = toks[i + 2].line;
            // Attribute argument range: the balanced `[ … ]`.
            let attr_end = {
                let mut depth = 0usize;
                let mut j = i + 1;
                loop {
                    if j >= n {
                        break n;
                    }
                    match toks[j].text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break j;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            };
            let since_value = (i + 3..attr_end)
                .find(|&j| {
                    toks[j].text == "since" && toks.get(j + 1).map(|t| t.text.as_str()) == Some("=")
                })
                .and_then(|j| {
                    f.scanned
                        .strings
                        .iter()
                        .find(|s| s.token_index == j + 2)
                        .map(|s| s.value.clone())
                });
            match since_value.as_deref().map(semver) {
                None => push_unless_waived(
                    &f.scanned,
                    &mut findings,
                    &f.path,
                    line,
                    EXPIRED_DEPRECATION,
                    "`#[deprecated]` without a `since = \"X.Y.Z\"` note: nothing tracks when \
                     the one-release grace period ends"
                        .into(),
                ),
                Some(None) => push_unless_waived(
                    &f.scanned,
                    &mut findings,
                    &f.path,
                    line,
                    EXPIRED_DEPRECATION,
                    format!(
                        "unparseable `since = \"{}\"` (expected `X.Y.Z`)",
                        since_value.unwrap_or_default()
                    ),
                ),
                Some(Some(since)) if since < current => push_unless_waived(
                    &f.scanned,
                    &mut findings,
                    &f.path,
                    line,
                    EXPIRED_DEPRECATION,
                    format!(
                        "deprecated since {} and the workspace is now {current_version}: the \
                         one-release grace period is over, remove the item",
                        since_value.unwrap_or_default()
                    ),
                ),
                Some(Some(_)) => {} // still within the grace release
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_source;

    fn run(src: &str, version: &str) -> Vec<Finding> {
        let files = vec![analyze_source("crates/core/src/x.rs", src)];
        check_deprecations(&files, version)
    }

    #[test]
    fn expired_since_is_a_finding_current_is_not() {
        let src = r#"
#[deprecated(since = "0.0.1", note = "use estimate()")]
pub fn old() {}
#[deprecated(since = "0.1.0", note = "use estimate()")]
pub fn grace() {}
"#;
        let f = run(src, "0.1.0");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("grace period is over"));
    }

    #[test]
    fn missing_or_malformed_since_is_a_finding() {
        let f = run("#[deprecated]\npub fn old() {}", "0.1.0");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("without a `since"));
        let f = run(
            "#[deprecated(since = \"next\", note = \"x\")]\npub fn old() {}",
            "0.1.0",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("unparseable"));
    }

    #[test]
    fn waivers_apply() {
        let src = r#"
// lint:allow(expired-deprecation): kept for the downstream fork one more release
#[deprecated(since = "0.0.1", note = "x")]
pub fn old() {}
"#;
        assert!(run(src, "0.1.0").is_empty());
    }

    #[test]
    fn workspace_version_parses_from_root_manifest() {
        let toml = "[workspace]\nmembers = []\n\n[workspace.package]\nversion = \"0.1.0\"\nedition = \"2021\"\n";
        assert_eq!(workspace_version(toml).as_deref(), Some("0.1.0"));
        assert_eq!(workspace_version("[package]\nversion = \"9.9.9\"\n"), None);
    }
}
