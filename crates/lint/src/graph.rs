//! Token-level call-graph extraction for one scanned file.
//!
//! The context pass (`serial-only-escape`, see [`crate::context`]) needs a
//! shallow structural view of every source file: which functions are
//! defined (and inside which `impl` block), where their bodies start and
//! end, which call sites they contain, and where the closures handed to
//! `pool::run_jobs` begin. All of it is recovered from the scanner's token
//! stream — no syntax tree, no name resolution beyond what the tokens
//! carry. The limits of that shallowness are deliberate and documented in
//! DESIGN §5: no generics or trait-object resolution, no calls through
//! function-valued parameters, and method calls on receivers the
//! type-hint heuristic cannot pin down produce *no* edge rather than a
//! guessed one.

use crate::scanner::ScannedFile;
use std::collections::{BTreeMap, BTreeSet};

/// A function definition found in one file.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// The enclosing `impl` block's type name, if any (`impl Foo` and
    /// `impl Trait for Foo` both yield `Foo`); `None` for free functions.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token range `[start, end)` of the body including its braces;
    /// `None` for bodyless declarations (trait methods ending in `;`).
    pub body: Option<(usize, usize)>,
    /// True when a `// ctx: serial-only` annotation attaches to this fn.
    pub serial_only: bool,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `Owner::name(…)` — the token directly before the `::` path tail.
    Qualified(String),
    /// `.name(…)` with the nearest plain-identifier receiver, when one
    /// exists (`ledger.record(…)` → `Some("ledger")`; a chained receiver
    /// like `a().b.record(…)` → `None`).
    Method(Option<String>),
    /// A bare `name(…)` call.
    Bare,
}

/// One call site: `name(` at a token position.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The callee name as written.
    pub name: String,
    /// 1-based line of the name token.
    pub line: usize,
    /// Index of the name token in the scanned token stream.
    pub token_index: usize,
    /// The syntactic shape of the call.
    pub kind: CallKind,
}

/// A structural problem with the file's `ctx:` annotations — surfaced by
/// the context pass as hygiene findings.
#[derive(Debug, Clone)]
pub struct CtxProblem {
    /// 1-based line of the offending annotation.
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

/// The extracted structure of one file.
#[derive(Debug, Default)]
pub struct FileGraph {
    /// Function definitions in token order.
    pub defs: Vec<FnDef>,
    /// Call sites in token order.
    pub calls: Vec<CallSite>,
    /// Worker-context token ranges `[start, end)`: the closure portion of
    /// every `run_jobs(…)` call (from the first `|` inside the call's
    /// parentheses to their close). Conservative: if an earlier argument
    /// also contains a closure the region starts there, over- rather than
    /// under-approximating worker context.
    pub worker_regions: Vec<(usize, usize)>,
    /// `ident → possible type names` gathered from `ident : …Type…`
    /// declaration windows (params, fields, typed lets) in this file.
    pub type_hints: BTreeMap<String, BTreeSet<String>>,
    /// Token ranges `[start, end)` of `#[cfg(test)]`-gated items; calls
    /// and defs inside them are excluded from workspace passes (tests may
    /// exercise serving invariants deliberately).
    pub test_ranges: Vec<(usize, usize)>,
    /// Annotation hygiene problems (dangling / unknown `ctx:` values).
    pub ctx_problems: Vec<CtxProblem>,
}

impl FileGraph {
    /// True when `token_index` falls inside a `#[cfg(test)]` item.
    pub fn in_test_code(&self, token_index: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(s, e)| token_index >= s && token_index < e)
    }
}

/// Tokens that look like `name(` but are control flow or bindings, never
/// calls the graph should record.
const CALL_BLACKLIST: &[&str] = &[
    "if", "while", "match", "for", "return", "loop", "in", "as", "move", "else", "let", "fn",
    "impl", "pub", "use", "mod", "where",
];

/// Finds the token index one past the matching closer for the opener at
/// `open` (`tokens[open]` must be the opener). Returns `tokens.len()` when
/// unbalanced (the compiler, not the lint, rejects that).
fn balanced(s: &ScannedFile, open: usize, opener: &str, closer: &str) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < s.tokens.len() {
        let t = s.tokens[i].text.as_str();
        if t == opener {
            depth += 1;
        } else if t == closer {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    s.tokens.len()
}

/// Skips a generic-argument list starting at `tokens[i] == "<"`, honouring
/// `->`/`=>` (whose `>` is not a closer). Returns the index after the `>`.
fn skip_generics(s: &ScannedFile, mut i: usize) -> usize {
    let mut depth = 0isize;
    while i < s.tokens.len() {
        let t = s.tokens[i].text.as_str();
        if t == "<" {
            depth += 1;
        } else if t == ">" {
            let arrow = i > 0 && matches!(s.tokens[i - 1].text.as_str(), "-" | "=");
            if !arrow {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
        } else if depth == 1 && matches!(t, ";" | "{") {
            return i; // malformed / not generics after all; bail out
        }
        i += 1;
    }
    i
}

/// `impl` block spans: `(body_start, body_end, owner)` where the body is
/// the balanced `{…}` token range and `owner` is the implemented type's
/// last path segment (`impl fmt::Display for SiteId` → `SiteId`).
fn impl_ranges(s: &ScannedFile) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let n = s.tokens.len();
    for i in 0..n {
        if s.tokens[i].text != "impl" {
            continue;
        }
        let mut j = i + 1;
        if j < n && s.tokens[j].text == "<" {
            j = skip_generics(s, j);
        }
        // Collect top-level idents of the type path(s) up to the body.
        // After `for`, restart: the implemented type is the one after it.
        let mut owner: Option<String> = None;
        while j < n {
            let t = s.tokens[j].text.as_str();
            match t {
                "{" => break,
                ";" => break, // `impl Trait for Type;`-ish degenerate
                "for" => {
                    owner = None;
                    j += 1;
                }
                "<" => j = skip_generics(s, j),
                "where" => {
                    // Skip the where clause up to the body brace.
                    while j < n && s.tokens[j].text != "{" {
                        j += 1;
                    }
                }
                _ => {
                    if s.tokens[j]
                        .text
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_alphabetic() || c == '_')
                    {
                        owner = Some(s.tokens[j].text.clone());
                    }
                    j += 1;
                }
            }
        }
        if j < n && s.tokens[j].text == "{" {
            if let Some(owner) = owner {
                out.push((j, balanced(s, j, "{", "}"), owner));
            }
        }
    }
    out
}

/// `#[cfg(test)]` item ranges: from the attribute to the end of the next
/// balanced `{…}` block (covers both `mod tests { … }` and gated fns).
fn cfg_test_ranges(s: &ScannedFile) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let n = s.tokens.len();
    let mut i = 0;
    while i + 6 < n {
        let is_cfg_test = s.tokens[i].text == "#"
            && s.tokens[i + 1].text == "["
            && s.tokens[i + 2].text == "cfg"
            && s.tokens[i + 3].text == "("
            && s.tokens[i + 4].text == "test"
            && s.tokens[i + 5].text == ")"
            && s.tokens[i + 6].text == "]";
        if is_cfg_test {
            let mut j = i + 7;
            while j < n && s.tokens[j].text != "{" && s.tokens[j].text != ";" {
                j += 1;
            }
            if j < n && s.tokens[j].text == "{" {
                let end = balanced(s, j, "{", "}");
                out.push((i, end));
                i = end;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Extracts the file's structural graph from its scanned tokens.
pub fn extract(s: &ScannedFile) -> FileGraph {
    let mut g = FileGraph {
        test_ranges: cfg_test_ranges(s),
        ..FileGraph::default()
    };
    let impls = impl_ranges(s);
    let n = s.tokens.len();

    // --- fn definitions ---------------------------------------------------
    for i in 0..n {
        if s.tokens[i].text != "fn" || i + 1 >= n {
            continue;
        }
        let name_tok = &s.tokens[i + 1];
        if !name_tok
            .text
            .chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        {
            continue; // `fn(` in a function-pointer type
        }
        let mut j = i + 2;
        if j < n && s.tokens[j].text == "<" {
            j = skip_generics(s, j);
        }
        if j >= n || s.tokens[j].text != "(" {
            continue;
        }
        j = balanced(s, j, "(", ")");
        // Return type / where clause: scan to the body `{` or a `;`.
        while j < n && s.tokens[j].text != "{" && s.tokens[j].text != ";" {
            j += 1;
        }
        let body = if j < n && s.tokens[j].text == "{" {
            Some((j, balanced(s, j, "{", "}")))
        } else {
            None
        };
        // Innermost impl block containing the `fn` token owns the method.
        let owner = impls
            .iter()
            .filter(|&&(start, end, _)| i > start && i < end)
            .min_by_key(|&&(start, end, _)| end - start)
            .map(|(_, _, o)| o.clone());
        g.defs.push(FnDef {
            name: name_tok.text.clone(),
            owner,
            line: s.tokens[i].line,
            body,
            serial_only: false,
        });
    }

    // --- ctx annotations attach to the next fn within 3 lines -------------
    for ann in &s.ctx_annotations {
        if ann.value != "serial-only" {
            g.ctx_problems.push(CtxProblem {
                line: ann.line,
                message: format!(
                    "unknown context annotation `ctx: {}` (only `serial-only` is defined)",
                    ann.value
                ),
            });
            continue;
        }
        let target = g
            .defs
            .iter_mut()
            .filter(|d| d.line >= ann.line && d.line <= ann.line + 3)
            .min_by_key(|d| d.line);
        match target {
            Some(def) => def.serial_only = true,
            None => g.ctx_problems.push(CtxProblem {
                line: ann.line,
                message: "dangling `ctx: serial-only` annotation: no fn definition within the \
                          next 3 lines"
                    .into(),
            }),
        }
    }

    // --- call sites -------------------------------------------------------
    for i in 0..n.saturating_sub(1) {
        if s.tokens[i + 1].text != "(" {
            continue;
        }
        let name = &s.tokens[i].text;
        if !name
            .chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        {
            continue;
        }
        if CALL_BLACKLIST.contains(&name.as_str()) {
            continue;
        }
        let prev = i.checked_sub(1).map(|k| s.tokens[k].text.as_str());
        if prev == Some("fn") {
            continue; // definition, not a call
        }
        let kind = if prev == Some(".") {
            // Nearest receiver: a plain ident directly before the dot.
            let recv = i
                .checked_sub(2)
                .map(|k| &s.tokens[k].text)
                .filter(|t| {
                    t.chars()
                        .next()
                        .is_some_and(|c| c.is_alphabetic() || c == '_')
                })
                .cloned();
            CallKind::Method(recv)
        } else if prev == Some(":") && i >= 3 && s.tokens[i - 2].text == ":" {
            let q = &s.tokens[i - 3].text;
            if q.chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || c == '_')
            {
                CallKind::Qualified(q.clone())
            } else {
                CallKind::Bare
            }
        } else {
            CallKind::Bare
        };
        g.calls.push(CallSite {
            name: name.clone(),
            line: s.tokens[i].line,
            token_index: i,
            kind,
        });
    }

    // --- worker regions: run_jobs closures --------------------------------
    for call in &g.calls {
        if call.name != "run_jobs" {
            continue;
        }
        let open = call.token_index + 1;
        let end = balanced(s, open, "(", ")");
        if let Some(bar) = (open..end).find(|&k| s.tokens[k].text == "|") {
            g.worker_regions.push((bar, end));
        }
    }

    // --- type hints: `ident : …Type…` declaration windows ------------------
    for i in 0..n.saturating_sub(2) {
        if s.tokens[i + 1].text != ":" {
            continue;
        }
        // Exclude path segments (`a::b`) on either side of the colon.
        if s.tokens[i + 2].text == ":" || (i > 0 && s.tokens[i - 1].text == ":") {
            continue;
        }
        let name = &s.tokens[i].text;
        if !name
            .chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        {
            continue;
        }
        let window_end = (i + 2 + 12).min(n);
        let mut depth = 0isize;
        for k in i + 2..window_end {
            let t = s.tokens[k].text.as_str();
            match t {
                "(" | "<" | "[" => depth += 1,
                ")" | ">" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                "," | ";" | "=" | "{" if depth == 0 => break,
                _ => {
                    if t.chars().next().is_some_and(|c| c.is_uppercase()) {
                        g.type_hints
                            .entry(name.clone())
                            .or_default()
                            .insert(t.to_string());
                    }
                }
            }
        }
    }

    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    #[test]
    fn fn_defs_get_owners_and_bodies() {
        let s = scan(
            "struct A;\nimpl A {\n    pub fn m(&self) -> u64 { inner() }\n}\nfn free(x: u64) -> u64 { x }\nimpl From<u8> for A {\n    fn from(v: u8) -> Self { A }\n}",
        );
        let g = extract(&s);
        let names: Vec<(String, Option<String>)> = g
            .defs
            .iter()
            .map(|d| (d.name.clone(), d.owner.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("m".into(), Some("A".into())),
                ("free".into(), None),
                ("from".into(), Some("A".into())),
            ]
        );
        assert!(g.defs.iter().all(|d| d.body.is_some()));
    }

    #[test]
    fn ctx_annotation_attaches_and_unknown_values_report() {
        let s = scan(
            "// ctx: serial-only\nfn fold() {}\n// ctx: parallel-fine\nfn other() {}\n// ctx: serial-only\nconst X: u64 = 1;",
        );
        let g = extract(&s);
        assert!(g.defs[0].serial_only, "fold is annotated");
        assert!(!g.defs[1].serial_only);
        assert_eq!(g.ctx_problems.len(), 2, "unknown value + dangling");
    }

    #[test]
    fn call_kinds_classify() {
        let s =
            scan("fn f() { a.g(); Reg::publish(x); free(1); pool::run_jobs(j, w, |_, x| h(x)); }");
        let g = extract(&s);
        let by_name = |n: &str| g.calls.iter().find(|c| c.name == n).unwrap();
        assert_eq!(by_name("g").kind, CallKind::Method(Some("a".into())));
        assert_eq!(by_name("publish").kind, CallKind::Qualified("Reg".into()));
        assert_eq!(by_name("free").kind, CallKind::Bare);
        assert_eq!(g.worker_regions.len(), 1);
        let (start, end) = g.worker_regions[0];
        let h = by_name("h");
        assert!(
            h.token_index >= start && h.token_index < end,
            "h is worker context"
        );
        assert!(by_name("free").token_index < start, "free is not");
    }

    #[test]
    fn macros_are_not_calls() {
        let s = scan("fn f() { format!(\"x\"); assert_eq!(a, b); }");
        let g = extract(&s);
        assert!(g
            .calls
            .iter()
            .all(|c| c.name != "format" && c.name != "assert_eq"));
    }

    #[test]
    fn type_hints_collect_from_declaration_windows() {
        let s = scan("struct S { metrics: Option<MetricsRegistry>, n: u64 }\nfn f(ledger: &mut CorrectionLedger) {}");
        let g = extract(&s);
        assert!(g.type_hints["metrics"].contains("MetricsRegistry"));
        assert!(g.type_hints["ledger"].contains("CorrectionLedger"));
        assert!(!g.type_hints.contains_key("n"));
    }

    #[test]
    fn cfg_test_ranges_cover_test_modules() {
        let s = scan("fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { live(); }\n}");
        let g = extract(&s);
        let call = g.calls.iter().find(|c| c.name == "live").unwrap();
        assert!(g.in_test_code(call.token_index));
    }
}
