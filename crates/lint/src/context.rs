//! The `serial-only-escape` context pass.
//!
//! PR 9's correction layer keeps serve runs byte-identical at any `--jobs`
//! only because every `CorrectionLedger` fold, `ModelRegistry::publish`,
//! flight-recorder stamp and maintenance entry point runs on the serial
//! event loop. This pass promotes that convention into a machine-checked
//! property:
//!
//! * a fn annotated `// ctx: serial-only` (directly above or trailing its
//!   `fn` line) must never be reachable from **worker context**;
//! * worker context is seeded by the closure argument of every
//!   `pool::run_jobs(…)` call and propagated through direct calls to a
//!   fixpoint (a fn called from worker context is itself worker context);
//! * any resolved call edge from worker context into a serial-only fn is a
//!   `serial-only-escape` finding at the call line, waivable with the
//!   usual `// lint:allow(serial-only-escape): <justification>`.
//!
//! ### Resolution limits, stated honestly
//!
//! The call graph is token-level (see [`crate::graph`]): no generics or
//! trait-object resolution, and no edges through function-valued
//! parameters (a closure handed onward by name is invisible). Method calls
//! resolve by candidate set: a name defined by exactly one in-tree `impl`
//! resolves unconditionally; an ambiguous name resolves only when the
//! receiver's declared type is visible in the same file (`ledger: &mut
//! CorrectionLedger` … `ledger.observe(…)`) or the receiver is `self`
//! inside an `impl`. Anything else produces *no* edge — the pass prefers a
//! documented blind spot over a guessed edge, and the runtime `--jobs`
//! byte-compare gates remain the backstop. `#[cfg(test)]` code is skipped:
//! tests may exercise torn publishes deliberately.

use crate::graph::CallKind;
use crate::rules::{push_unless_waived, SERIAL_ONLY_ESCAPE};
use crate::{AnalyzedFile, Finding};
use std::collections::BTreeMap;

/// A global function id: (file index, def index within that file).
type DefId = (usize, usize);

struct Workspace<'a> {
    files: &'a [AnalyzedFile],
    /// `(owner, name)` → method defs.
    methods: BTreeMap<(String, String), Vec<DefId>>,
    /// `name` → method defs (any owner).
    methods_by_name: BTreeMap<String, Vec<DefId>>,
    /// `name` → free-fn defs.
    free_by_name: BTreeMap<String, Vec<DefId>>,
}

impl<'a> Workspace<'a> {
    fn build(files: &'a [AnalyzedFile]) -> Self {
        let mut ws = Workspace {
            files,
            methods: BTreeMap::new(),
            methods_by_name: BTreeMap::new(),
            free_by_name: BTreeMap::new(),
        };
        for (fi, f) in files.iter().enumerate() {
            for (di, d) in f.graph.defs.iter().enumerate() {
                let id = (fi, di);
                match &d.owner {
                    Some(owner) => {
                        ws.methods
                            .entry((owner.clone(), d.name.clone()))
                            .or_default()
                            .push(id);
                        ws.methods_by_name
                            .entry(d.name.clone())
                            .or_default()
                            .push(id);
                    }
                    None => ws.free_by_name.entry(d.name.clone()).or_default().push(id),
                }
            }
        }
        ws
    }

    /// The innermost fn def in `file` whose body contains `token_index`.
    fn enclosing_def(&self, file: usize, token_index: usize) -> Option<DefId> {
        self.files[file]
            .graph
            .defs
            .iter()
            .enumerate()
            .filter_map(|(di, d)| {
                d.body
                    .filter(|&(s, e)| token_index > s && token_index < e)
                    .map(|(s, e)| (e - s, (file, di)))
            })
            .min_by_key(|&(span, _)| span)
            .map(|(_, id)| id)
    }

    /// Resolves one call site in `file` to its possible in-tree callees.
    fn resolve(&self, file: usize, call_index: usize) -> Vec<DefId> {
        let call = &self.files[file].graph.calls[call_index];
        let hints = &self.files[file].graph.type_hints;
        let enclosing_owner = || {
            self.enclosing_def(file, call.token_index)
                .and_then(|(fi, di)| self.files[fi].graph.defs[di].owner.clone())
        };
        match &call.kind {
            CallKind::Qualified(q) => {
                let owner = if q == "Self" {
                    match enclosing_owner() {
                        Some(o) => o,
                        None => return Vec::new(),
                    }
                } else {
                    q.clone()
                };
                if let Some(ids) = self.methods.get(&(owner, call.name.clone())) {
                    return ids.clone();
                }
                // `module::free_fn(…)`: the qualifier is a module path
                // segment, not a type — fall back to a unique free fn.
                match self.free_by_name.get(&call.name) {
                    Some(ids) if ids.len() == 1 => ids.clone(),
                    _ => Vec::new(),
                }
            }
            CallKind::Method(receiver) => {
                let candidates = match self.methods_by_name.get(&call.name) {
                    Some(ids) => ids,
                    None => return Vec::new(),
                };
                if candidates.len() == 1 {
                    return candidates.clone();
                }
                // Ambiguous name: pin the receiver's type down, or refuse.
                let owner_hints: Vec<String> = match receiver.as_deref() {
                    Some("self") => enclosing_owner().into_iter().collect(),
                    Some(recv) => hints
                        .get(recv)
                        .map(|set| set.iter().cloned().collect())
                        .unwrap_or_default(),
                    None => Vec::new(),
                };
                if owner_hints.is_empty() {
                    return Vec::new();
                }
                candidates
                    .iter()
                    .filter(|&&(fi, di)| {
                        self.files[fi].graph.defs[di]
                            .owner
                            .as_deref()
                            .is_some_and(|o| owner_hints.iter().any(|h| h == o))
                    })
                    .copied()
                    .collect()
            }
            CallKind::Bare => {
                // Same-file free fn first; otherwise a unique workspace one.
                if let Some(ids) = self.free_by_name.get(&call.name) {
                    let local: Vec<DefId> =
                        ids.iter().filter(|&&(fi, _)| fi == file).copied().collect();
                    if !local.is_empty() {
                        return local;
                    }
                    if ids.len() == 1 {
                        return ids.clone();
                    }
                }
                Vec::new()
            }
        }
    }
}

fn def_label(files: &[AnalyzedFile], (fi, di): DefId) -> String {
    let d = &files[fi].graph.defs[di];
    match &d.owner {
        Some(o) => format!("{}::{}", o, d.name),
        None => d.name.clone(),
    }
}

/// Runs the context pass over the analyzed `crates/*/src` files.
pub fn check_context(files: &[AnalyzedFile]) -> Vec<Finding> {
    let ws = Workspace::build(files);
    let mut findings = Vec::new();

    // Annotation hygiene first: dangling / unknown ctx values.
    for f in files {
        for p in &f.graph.ctx_problems {
            push_unless_waived(
                &f.scanned,
                &mut findings,
                &f.path,
                p.line,
                SERIAL_ONLY_ESCAPE,
                p.message.clone(),
            );
        }
    }

    // Seed: every call site inside a run_jobs closure region, with a
    // provenance chain for the finding message.
    // worker[def] = chain of fn labels from the closure to that def.
    let mut worker: BTreeMap<DefId, Vec<String>> = BTreeMap::new();
    let mut queue: Vec<DefId> = Vec::new();

    let consider = |files: &[AnalyzedFile],
                    findings: &mut Vec<Finding>,
                    worker: &mut BTreeMap<DefId, Vec<String>>,
                    queue: &mut Vec<DefId>,
                    file: usize,
                    call_index: usize,
                    chain: &[String]| {
        let call = &files[file].graph.calls[call_index];
        for target in ws.resolve(file, call_index) {
            let def = &files[target.0].graph.defs[target.1];
            if def.serial_only {
                let via = if chain.is_empty() {
                    "directly inside a `run_jobs` closure".to_string()
                } else {
                    format!("via worker-context fn(s) {}", chain.join(" -> "))
                };
                push_unless_waived(
                    &files[file].scanned,
                    findings,
                    &files[file].path,
                    call.line,
                    SERIAL_ONLY_ESCAPE,
                    format!(
                        "worker-context call into serial-only fn `{}` ({}:{}) {via}",
                        def_label(files, target),
                        files[target.0].path,
                        def.line
                    ),
                );
            } else if let std::collections::btree_map::Entry::Vacant(e) = worker.entry(target) {
                let mut next = chain.to_vec();
                next.push(def_label(files, target));
                e.insert(next);
                queue.push(target);
            }
        }
    };

    for (fi, f) in files.iter().enumerate() {
        for &(start, end) in &f.graph.worker_regions {
            if f.graph.in_test_code(start) {
                continue;
            }
            for (ci, c) in f.graph.calls.iter().enumerate() {
                if c.token_index >= start && c.token_index < end {
                    consider(files, &mut findings, &mut worker, &mut queue, fi, ci, &[]);
                }
            }
        }
    }

    // Fixpoint: propagate worker context through resolved bodies.
    while let Some(id) = queue.pop() {
        let chain = worker.get(&id).cloned().unwrap_or_default();
        let (fi, di) = id;
        let Some((bs, be)) = files[fi].graph.defs[di].body else {
            continue;
        };
        if files[fi].graph.in_test_code(bs) {
            continue;
        }
        for (ci, c) in files[fi].graph.calls.iter().enumerate() {
            if c.token_index > bs && c.token_index < be {
                consider(
                    files,
                    &mut findings,
                    &mut worker,
                    &mut queue,
                    fi,
                    ci,
                    &chain,
                );
            }
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_source;

    fn run(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<AnalyzedFile> = srcs.iter().map(|(p, s)| analyze_source(p, s)).collect();
        check_context(&files)
    }

    const LEDGER: &str = "pub struct Ledger;\nimpl Ledger {\n    // ctx: serial-only\n    pub fn fold(&mut self, x: u64) { let _ = x; }\n}\n";

    #[test]
    fn direct_escape_in_run_jobs_closure_is_found() {
        let src = format!(
            "{LEDGER}pub fn bad(l: &mut Ledger) {{\n    pool::run_jobs(vec![1u64], 2, |_, j| l.fold(j));\n}}\n"
        );
        let f = run(&[("crates/x/src/lib.rs", &src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, SERIAL_ONLY_ESCAPE);
        assert_eq!(f[0].line, 7);
        assert!(f[0].message.contains("Ledger::fold"), "{}", f[0].message);
    }

    #[test]
    fn transitive_escape_propagates_through_helpers() {
        let src = format!(
            "{LEDGER}fn helper(l: &mut Ledger) {{ l.fold(3); }}\npub fn bad(l: &mut Ledger) {{\n    pool::run_jobs(vec![1u64], 2, |_, _j| helper(l));\n}}\n"
        );
        let f = run(&[("crates/x/src/lib.rs", &src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6, "finding lands on the call inside helper");
        assert!(f[0].message.contains("via worker-context fn(s) helper"));
    }

    #[test]
    fn serial_calls_are_fine_and_waivers_suppress() {
        let ok = format!("{LEDGER}pub fn fine(l: &mut Ledger) {{ l.fold(1); }}\n");
        assert!(run(&[("crates/x/src/lib.rs", &ok)]).is_empty());
        let waived = format!(
            "{LEDGER}pub fn bad(l: &mut Ledger) {{\n    pool::run_jobs(vec![1u64], 2, |_, j| {{\n        // lint:allow(serial-only-escape): test double, not the live ledger\n        l.fold(j)\n    }});\n}}\n"
        );
        assert!(run(&[("crates/x/src/lib.rs", &waived)]).is_empty());
    }

    #[test]
    fn ambiguous_method_without_hints_produces_no_edge() {
        // Two `fold` methods and an untyped receiver: the pass refuses to
        // guess rather than flagging `Other::fold` users.
        let other =
            "pub struct Other;\nimpl Other {\n    pub fn fold(&self, x: u64) -> u64 { x }\n}\n";
        let src = format!(
            "{LEDGER}pub fn ok(o: u64) {{\n    pool::run_jobs(vec![o], 2, |_, j| untyped.fold(j));\n}}\n"
        );
        let f = run(&[
            ("crates/x/src/lib.rs", &src),
            ("crates/y/src/lib.rs", other),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn hinted_receiver_resolves_among_ambiguous_candidates() {
        let other =
            "pub struct Other;\nimpl Other {\n    pub fn fold(&self, x: u64) -> u64 { x }\n}\n";
        let src = format!(
            "{LEDGER}pub fn bad(l: &mut Ledger, o: &Other) {{\n    pool::run_jobs(vec![1u64], 2, |_, j| l.fold(j));\n    o.fold(2);\n}}\n"
        );
        let f = run(&[
            ("crates/x/src/lib.rs", &src),
            ("crates/y/src/lib.rs", other),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("Ledger::fold"));
    }

    #[test]
    fn cfg_test_worker_regions_are_exempt() {
        let src = format!(
            "{LEDGER}#[cfg(test)]\nmod tests {{\n    fn stress(l: &mut super::Ledger) {{\n        pool::run_jobs(vec![1u64], 2, |_, j| l.fold(j));\n    }}\n}}\n"
        );
        assert!(run(&[("crates/x/src/lib.rs", &src)]).is_empty());
    }
}
