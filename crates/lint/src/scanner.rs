//! A comment- and string-aware token scanner for Rust source.
//!
//! The lint rules only need a shallow view of a file: the sequence of
//! identifier / number / punctuation tokens with their line numbers, plus
//! the text of every line comment (where waivers live). Everything inside
//! string literals, char literals and comments is invisible to the rules —
//! a doc comment may freely discuss `HashMap` iteration without tripping
//! `no-unordered-iteration`.
//!
//! This is deliberately *not* a full Rust lexer. It understands exactly the
//! constructs that would otherwise corrupt the token stream: `//` and
//! nested `/* */` comments, cooked strings with escapes, raw (and byte)
//! strings with `#` fences, char literals, and the char-vs-lifetime
//! ambiguity of `'`. Anything fancier (macros, attributes, generics) simply
//! flows through as punctuation tokens for the rules to pattern-match.

/// One token of a scanned source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token text: an identifier, a number literal, or a single
    /// punctuation character.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: usize,
}

/// An inline policy waiver: `// lint:allow(rule): justification`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// 1-based line the waiver comment is on.
    pub line: usize,
    /// The rule id named inside `lint:allow(...)`.
    pub rule: String,
    /// The justification text after the closing `):`. Guaranteed non-empty
    /// for waivers in `waivers`; empty ones land in `malformed_waivers`.
    pub justification: String,
}

/// A malformed waiver comment: still *looks* like `lint:allow`, but does
/// not carry a well-formed `(rule): justification` tail. The policy makes
/// these findings in their own right.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MalformedWaiver {
    /// 1-based line of the broken waiver.
    pub line: usize,
    /// What is wrong with it.
    pub problem: String,
}

/// A string literal observed while scanning. Strings stay invisible to the
/// token stream (the per-file rules must not see their contents), but the
/// workspace passes need them: the telemetry pass reads metric names out of
/// constructor calls, the deprecation pass reads `since = "X.Y.Z"` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StringLit {
    /// 1-based line the literal starts on.
    pub line: usize,
    /// The literal's body, verbatim source text between the delimiters
    /// (escape sequences are *not* processed — registry names and version
    /// strings never contain them).
    pub value: String,
    /// Index into [`ScannedFile::tokens`] of the first token *after* this
    /// literal. A call pattern `name (` at token `i`/`i+1` has this string
    /// as its first argument iff `token_index == i + 2`.
    pub token_index: usize,
}

/// A context annotation comment: `// ctx: <value>`, e.g.
/// `// ctx: serial-only` directly above (or trailing) a fn definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtxAnnotation {
    /// 1-based line the annotation comment is on.
    pub line: usize,
    /// The annotation value, trimmed (`serial-only` is the only one the
    /// context pass understands; anything else is a hygiene finding).
    pub value: String,
}

/// The result of scanning one source file.
#[derive(Debug, Default)]
pub struct ScannedFile {
    /// Code tokens in source order (comments and literals stripped).
    pub tokens: Vec<Token>,
    /// Well-formed waivers found in line comments.
    pub waivers: Vec<Waiver>,
    /// `lint:allow` comments that fail to parse or lack a justification.
    pub malformed_waivers: Vec<MalformedWaiver>,
    /// String literals in source order, with the token position they
    /// occupy. Invisible to `tokens`; used by the workspace passes only.
    pub strings: Vec<StringLit>,
    /// `// ctx: <value>` annotations in source order.
    pub ctx_annotations: Vec<CtxAnnotation>,
}

impl ScannedFile {
    /// True when `rule` is waived for a finding on `line`: a waiver covers
    /// its own line (trailing comment) and the line directly below it
    /// (standalone comment above the offending statement).
    pub fn is_waived(&self, rule: &str, line: usize) -> bool {
        self.waivers
            .iter()
            .any(|w| w.rule == rule && (w.line == line || w.line + 1 == line))
    }
}

/// Scans Rust source into tokens and waivers. Never fails: unterminated
/// literals simply consume the rest of the file (the compiler, not the
/// lint, is responsible for rejecting them).
pub fn scan(source: &str) -> ScannedFile {
    let mut out = ScannedFile::default();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let n = chars.len();

    // Advances `idx` past a cooked string/char body until `quote`,
    // honouring backslash escapes and counting newlines.
    let consume_cooked = |idx: &mut usize, line: &mut usize, quote: char, chars: &[char]| {
        while *idx < chars.len() {
            match chars[*idx] {
                '\\' => {
                    // An escaped newline (string continuation) still ends
                    // a source line and must be counted.
                    if *idx + 1 < chars.len() && chars[*idx + 1] == '\n' {
                        *line += 1;
                    }
                    *idx += 2;
                }
                '\n' => {
                    *line += 1;
                    *idx += 1;
                }
                c if c == quote => {
                    *idx += 1;
                    return;
                }
                _ => *idx += 1,
            }
        }
    };

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                // Line comment: collect its text for waiver parsing.
                let start = i + 2;
                let mut j = start;
                while j < n && chars[j] != '\n' {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                parse_waiver_comment(&text, line, &mut out);
                parse_ctx_comment(&text, line, &mut out);
                i = j;
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                // Block comment, possibly nested.
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                let start = i + 1;
                i += 1;
                consume_cooked(&mut i, &mut line, '"', &chars);
                // `i` is one past the closing quote (or == n if unterminated).
                let end = if i > start && chars[i - 1] == '"' {
                    i - 1
                } else {
                    i
                };
                out.strings.push(StringLit {
                    line: start_line,
                    value: chars[start..end].iter().collect(),
                    token_index: out.tokens.len(),
                });
            }
            '\'' => {
                // Char literal or lifetime. `'\x'`/`'\\'` is a char;
                // `'a'` is a char; `'a` (no closing quote after one
                // ident) is a lifetime and has no terminator.
                if i + 1 < n && chars[i + 1] == '\\' {
                    // Leave `i` on the backslash so the escape pair
                    // (`\'`, `\\`, …) is skipped as a unit.
                    i += 1;
                    consume_cooked(&mut i, &mut line, '\'', &chars);
                } else {
                    let mut j = i + 1;
                    while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                        j += 1;
                    }
                    if j < n && chars[j] == '\'' && j > i + 1 {
                        i = j + 1; // 'a' — char literal
                    } else if j == i + 1 && j < n {
                        // Punctuation char literal like '(' or ' '.
                        i += 2;
                        consume_cooked(&mut i, &mut line, '\'', &chars);
                    } else {
                        i = j; // 'lifetime
                    }
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let ident: String = chars[start..i].iter().collect();
                // Raw/byte string prefixes: r"..", r#".."#, b"..", br#".."#.
                if matches!(ident.as_str(), "r" | "b" | "br" | "rb") && i < n {
                    let mut hashes = 0;
                    let mut j = i;
                    while j < n && chars[j] == '#' {
                        hashes += 1;
                        j += 1;
                    }
                    if j < n && chars[j] == '"' && (hashes > 0 || chars[i] == '"') {
                        // Consume until `"` followed by `hashes` hashes.
                        let start_line = line;
                        j += 1;
                        let body_start = j;
                        let mut body_end = n;
                        loop {
                            if j >= n {
                                break;
                            }
                            if chars[j] == '\n' {
                                line += 1;
                                j += 1;
                                continue;
                            }
                            if chars[j] == '"' {
                                let mut k = 0;
                                while k < hashes && j + 1 + k < n && chars[j + 1 + k] == '#' {
                                    k += 1;
                                }
                                if k == hashes {
                                    body_end = j;
                                    j += 1 + hashes;
                                    break;
                                }
                            }
                            j += 1;
                        }
                        out.strings.push(StringLit {
                            line: start_line,
                            value: chars[body_start..body_end].iter().collect(),
                            token_index: out.tokens.len(),
                        });
                        i = j;
                        continue; // prefix consumed as part of the literal
                    }
                }
                out.tokens.push(Token { text: ident, line });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            _ => {
                out.tokens.push(Token {
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// The waiver grammar inside a line comment:
/// `lint:allow(<rule>): <non-empty justification>`.
///
/// A waiver must be the *whole* comment: the text after `//` (trimmed)
/// must begin with `lint:allow`. Doc comments (`///`, `//!`) never carry
/// waivers, so prose may discuss the syntax freely.
fn parse_waiver_comment(comment: &str, line: usize, out: &mut ScannedFile) {
    if comment.starts_with('/') || comment.starts_with('!') {
        return; // doc comment
    }
    let trimmed = comment.trim_start();
    if !trimmed.starts_with("lint:allow") {
        return;
    }
    let rest = &trimmed["lint:allow".len()..];
    let Some(rest) = rest.strip_prefix('(') else {
        out.malformed_waivers.push(MalformedWaiver {
            line,
            problem: "expected `lint:allow(<rule>): <justification>`".into(),
        });
        return;
    };
    let Some(close) = rest.find(')') else {
        out.malformed_waivers.push(MalformedWaiver {
            line,
            problem: "unclosed rule name in `lint:allow(`".into(),
        });
        return;
    };
    let rule = rest[..close].trim().to_string();
    let tail = &rest[close + 1..];
    let justification = match tail.strip_prefix(':') {
        Some(j) => j.trim().to_string(),
        None => {
            out.malformed_waivers.push(MalformedWaiver {
                line,
                problem: format!("waiver for `{rule}` lacks a `: <justification>` tail"),
            });
            return;
        }
    };
    if justification.is_empty() {
        out.malformed_waivers.push(MalformedWaiver {
            line,
            problem: format!("waiver for `{rule}` has an empty justification"),
        });
        return;
    }
    out.waivers.push(Waiver {
        line,
        rule,
        justification,
    });
}

/// The context-annotation grammar inside a line comment: `ctx: <value>`.
///
/// Like waivers, an annotation must be the *whole* comment (the text after
/// `//`, trimmed, must begin with `ctx:`), and doc comments never carry
/// one — prose may discuss the syntax freely.
fn parse_ctx_comment(comment: &str, line: usize, out: &mut ScannedFile) {
    if comment.starts_with('/') || comment.starts_with('!') {
        return; // doc comment
    }
    let trimmed = comment.trim_start();
    let Some(rest) = trimmed.strip_prefix("ctx:") else {
        return;
    };
    out.ctx_annotations.push(CtxAnnotation {
        line,
        value: rest.trim().to_string(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        scan(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_numbers_and_punct_tokenize_with_lines() {
        let s = scan("let x = 5;\nfoo.bar()");
        let got: Vec<(String, usize)> = s.tokens.iter().map(|t| (t.text.clone(), t.line)).collect();
        assert_eq!(
            got,
            vec![
                ("let".into(), 1),
                ("x".into(), 1),
                ("=".into(), 1),
                ("5".into(), 1),
                (";".into(), 1),
                ("foo".into(), 2),
                (".".into(), 2),
                ("bar".into(), 2),
                ("(".into(), 2),
                (")".into(), 2),
            ]
        );
    }

    #[test]
    fn comments_are_invisible_to_the_token_stream() {
        assert_eq!(
            texts("a // HashMap Instant\nb /* thread::spawn /* nested */ still */ c"),
            vec!["a", "b", "c"]
        );
    }

    #[test]
    fn string_contents_are_invisible() {
        assert_eq!(
            texts(r#"x("HashMap \" Instant"); y"#),
            vec!["x", "(", ")", ";", "y"]
        );
    }

    #[test]
    fn raw_and_byte_strings_are_invisible() {
        assert_eq!(
            texts(r##"f(r#"Instant "quoted" inside"#, b"SystemTime", r"HashMap"); z"##),
            vec!["f", "(", ",", ",", ")", ";", "z"]
        );
    }

    #[test]
    fn char_literals_and_lifetimes_disambiguate() {
        // 'a' is a char; 'b (no close) is a lifetime; '\'' is escaped.
        assert_eq!(
            texts("m('a', '\\'', x::<'b>())"),
            vec!["m", "(", ",", ",", "x", ":", ":", "<", ">", "(", ")", ")"]
        );
    }

    #[test]
    fn multiline_strings_keep_line_numbers_right() {
        let s = scan("let a = \"one\ntwo\";\nInstant");
        let inst = s.tokens.iter().find(|t| t.text == "Instant").unwrap();
        assert_eq!(inst.line, 3);
    }

    #[test]
    fn escaped_newline_string_continuations_keep_line_numbers_right() {
        let s = scan("let a = \"one\\\ntwo\";\nInstant");
        let inst = s.tokens.iter().find(|t| t.text == "Instant").unwrap();
        assert_eq!(inst.line, 3);
    }

    #[test]
    fn well_formed_waiver_parses() {
        let s = scan("// lint:allow(no-wall-clock): honest speedup table\nfoo();");
        assert_eq!(s.waivers.len(), 1);
        assert_eq!(s.waivers[0].rule, "no-wall-clock");
        assert_eq!(s.waivers[0].justification, "honest speedup table");
        assert!(s.is_waived("no-wall-clock", 1));
        assert!(s.is_waived("no-wall-clock", 2), "covers the next line");
        assert!(!s.is_waived("no-wall-clock", 3));
        assert!(!s.is_waived("no-raw-threads", 2));
    }

    #[test]
    fn waiver_without_justification_is_malformed() {
        for src in [
            "// lint:allow(no-wall-clock)",
            "// lint:allow(no-wall-clock):",
            "// lint:allow(no-wall-clock):   ",
            "// lint:allow no-wall-clock: x",
            "// lint:allow(no-wall-clock",
        ] {
            let s = scan(src);
            assert!(s.waivers.is_empty(), "{src}");
            assert_eq!(s.malformed_waivers.len(), 1, "{src}");
        }
    }

    #[test]
    fn waiver_text_inside_a_string_is_not_a_waiver() {
        let s = scan(r#"let x = "lint:allow(no-wall-clock): nope";"#);
        assert!(s.waivers.is_empty());
        assert!(s.malformed_waivers.is_empty());
    }

    #[test]
    fn string_literals_are_captured_with_token_positions() {
        let s = scan(r#"tel.inc("serve.requests", 1);"#);
        // Tokens: tel . inc ( , 1 ) ;  — the string sits between `(` and `,`.
        assert_eq!(s.strings.len(), 1);
        assert_eq!(s.strings[0].value, "serve.requests");
        assert_eq!(s.strings[0].line, 1);
        let open = s.tokens.iter().position(|t| t.text == "(").unwrap();
        assert_eq!(s.strings[0].token_index, open + 1);
    }

    #[test]
    fn raw_string_with_hash_guards_containing_fn_and_parens_stays_opaque() {
        // The call-graph pass must not see `fn evil(` inside the literal as
        // a definition or call site — and the literal value is captured.
        let src = r###"let t = r##"fn evil() { pool::run_jobs(x) }"##; next()"###;
        let s = scan(src);
        assert!(!s.tokens.iter().any(|t| t.text == "evil"));
        assert!(!s.tokens.iter().any(|t| t.text == "run_jobs"));
        assert_eq!(s.strings.len(), 1);
        assert_eq!(s.strings[0].value, "fn evil() { pool::run_jobs(x) }");
        assert!(s.tokens.iter().any(|t| t.text == "next"));
    }

    #[test]
    fn nested_block_comment_terminating_at_eof_is_consumed() {
        // Unterminated nested comment swallows the rest of the file
        // without panicking or leaking tokens.
        let s = scan("a /* outer /* inner */ still-open fn ghost(");
        assert_eq!(
            s.tokens.iter().map(|t| t.text.as_str()).collect::<Vec<_>>(),
            vec!["a"]
        );
    }

    #[test]
    fn char_vs_lifetime_inside_generic_call_sites() {
        // `split::<'a, Vec<char>>('x', 'y')` — lifetimes tokenize away,
        // char args vanish, the call pattern `split (`…`)` survives for the
        // call-graph pass (after the turbofish punctuation).
        let s = scan("split::<'a, Vec<char>>('x', 'y'); done");
        let texts: Vec<&str> = s.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec![
                "split", ":", ":", "<", ",", "Vec", "<", "char", ">", ">", "(", ",", ")", ";",
                "done"
            ]
        );
        assert!(s.strings.is_empty());
    }

    #[test]
    fn ctx_annotations_parse_and_doc_comments_do_not() {
        let s = scan("// ctx: serial-only\nfn fold() {}\n/// ctx: serial-only\nfn doc() {}");
        assert_eq!(s.ctx_annotations.len(), 1);
        assert_eq!(s.ctx_annotations[0].line, 1);
        assert_eq!(s.ctx_annotations[0].value, "serial-only");
    }

    #[test]
    fn ctx_text_inside_a_string_is_not_an_annotation() {
        let s = scan(r#"let x = "ctx: serial-only";"#);
        assert!(s.ctx_annotations.is_empty());
        assert_eq!(s.strings.len(), 1);
    }
}
