//! The policy rules and their token-level checkers.
//!
//! Each rule is a named, waivable check over the scanned token stream of
//! one source file (or, for `hermetic-manifests`, one `Cargo.toml`). The
//! rules implement DESIGN §5's determinism/hermeticity policy:
//!
//! | rule id | what it flags |
//! |---|---|
//! | `no-wall-clock` | `Instant`/`SystemTime` outside the sanctioned wall-clock files |
//! | `no-ambient-entropy` | ambient-entropy sources and RNG reimplementation outside `mdbs_stats::rng` |
//! | `no-raw-threads` | `thread::{spawn,scope,Builder}` outside `mdbs_core::pool` |
//! | `no-unordered-iteration` | `HashMap`/`HashSet` iteration in core/sim/stats/cli without ordering evidence |
//! | `no-unsafe` | any `unsafe` token; crate roots missing `#![forbid(unsafe_code)]` |
//! | `hermetic-manifests` | manifest dependencies outside the in-tree path-crate whitelist |
//! | `bad-waiver` | a `lint:allow` waiver with no rule, no justification, or an unknown rule |
//! | `serial-only-escape` | a worker-context call path into a `// ctx: serial-only` fn (workspace pass, [`crate::context`]) |
//! | `unregistered-metric` | a telemetry name not in `crates/lint/telemetry.registry` (workspace pass, [`crate::telemetry_registry`]) |
//! | `expired-deprecation` | a `#[deprecated]` item past its one-release grace period (workspace pass, [`crate::deprecation`]) |
//!
//! A finding is suppressed by an inline waiver `// lint:allow(rule):
//! <justification>` on the finding's line or the line directly above. The
//! justification is mandatory — a bare waiver is a `bad-waiver` finding,
//! and `bad-waiver` itself cannot be waived.
//!
//! ### Heuristics, stated honestly
//!
//! `no-unordered-iteration` is a taint analysis over tokens, not types: a
//! name is *unordered-tainted* when its declaration mentions `HashMap`/
//! `HashSet` (directly, through a `type` alias, or through a containing
//! generic), and iteration-shaped calls (`.iter()`, `.keys()`, …) whose
//! receiver chain touches a tainted name are flagged — unless ordering
//! evidence (`sort*`, a `BTreeMap`/`BTreeSet` collect, or an
//! order-insensitive sink such as `sum`/`count`/`min`/`max`/`all`/`any`)
//! appears within the following [`ORDER_EVIDENCE_WINDOW`] tokens. The
//! heuristic can miss iteration reached through a function boundary; the
//! `clippy.toml` `disallowed-types` layer and the runtime byte-compare
//! gates back it up.

use crate::scanner::{scan, ScannedFile, Token};
use crate::Finding;
use std::collections::BTreeSet;

/// Rule id: wall-clock types outside the sanctioned files.
pub const NO_WALL_CLOCK: &str = "no-wall-clock";
/// Rule id: ambient entropy / RNG reimplementation outside `mdbs_stats::rng`.
pub const NO_AMBIENT_ENTROPY: &str = "no-ambient-entropy";
/// Rule id: raw thread creation outside `mdbs_core::pool`.
pub const NO_RAW_THREADS: &str = "no-raw-threads";
/// Rule id: unordered map/set iteration on output-relevant crates.
pub const NO_UNORDERED_ITERATION: &str = "no-unordered-iteration";
/// Rule id: `unsafe` code or a crate root missing `#![forbid(unsafe_code)]`.
pub const NO_UNSAFE: &str = "no-unsafe";
/// Rule id: manifest dependencies outside the in-tree whitelist.
pub const HERMETIC_MANIFESTS: &str = "hermetic-manifests";
/// Rule id: a malformed or unknown-rule waiver comment.
pub const BAD_WAIVER: &str = "bad-waiver";
/// Rule id: a worker-context call path into a `// ctx: serial-only` fn
/// (and `ctx:` annotation hygiene). See [`crate::context`].
pub const SERIAL_ONLY_ESCAPE: &str = "serial-only-escape";
/// Rule id: a telemetry name emitted but not registered (or registry
/// drift). See [`crate::telemetry_registry`].
pub const UNREGISTERED_METRIC: &str = "unregistered-metric";
/// Rule id: a `#[deprecated]` item past its one-release grace period, or
/// missing the `since` note that tracks it. See [`crate::deprecation`].
pub const EXPIRED_DEPRECATION: &str = "expired-deprecation";

/// Every rule id, in report order.
pub const ALL_RULES: [&str; 10] = [
    NO_WALL_CLOCK,
    NO_AMBIENT_ENTROPY,
    NO_RAW_THREADS,
    NO_UNORDERED_ITERATION,
    NO_UNSAFE,
    HERMETIC_MANIFESTS,
    BAD_WAIVER,
    SERIAL_ONLY_ESCAPE,
    UNREGISTERED_METRIC,
    EXPIRED_DEPRECATION,
];

/// Files allowed to touch `Instant`/`SystemTime`: the telemetry `wall_ms`
/// attribution path and the bench wall-clock harness.
const WALL_CLOCK_ALLOWED: [&str; 2] =
    ["crates/obs/src/telemetry.rs", "crates/bench/src/harness.rs"];

/// The one file allowed to create OS threads.
const RAW_THREADS_ALLOWED: [&str; 1] = ["crates/core/src/pool.rs"];

/// The one file allowed to implement an RNG.
const ENTROPY_ALLOWED: [&str; 1] = ["crates/stats/src/rng.rs"];

/// Crates whose iteration order reaches deterministic output paths.
const UNORDERED_RESTRICTED: [&str; 4] = [
    "crates/core/",
    "crates/sim/",
    "crates/stats/",
    "crates/cli/",
];

/// Identifiers that pull entropy from the environment (std hashing
/// randomness, external RNG crates' entry points).
const ENTROPY_IDENTS: [&str; 6] = [
    "RandomState",
    "DefaultHasher",
    "thread_rng",
    "from_entropy",
    "OsRng",
    "getrandom",
];

/// Markers of an RNG implementation: the reference algorithm names and the
/// SplitMix64 increment constant (hand-rolling a second generator outside
/// `mdbs_stats::rng` is a policy violation even though it is seedable).
const RNG_IMPL_IDENTS: [&str; 3] = ["splitmix64", "xoshiro256", "SplitMix64"];
const SPLITMIX64_GAMMA: &str = "0x9e3779b97f4a7c15";

/// Iteration-shaped methods on maps/sets.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Tokens accepted as evidence that an unordered iteration is made
/// deterministic: an explicit sort, a collect into an ordered container,
/// or an order-insensitive reduction.
const ORDER_EVIDENCE: [&str; 17] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "sum",
    "count",
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "any",
];

/// How far (in tokens) after an iteration call ordering evidence may
/// appear. Generous enough to span a `collect(); x.sort();` pair, small
/// enough not to absorb the next function.
pub const ORDER_EVIDENCE_WINDOW: usize = 60;

const UNORDERED_BASE_TYPES: [&str; 2] = ["HashMap", "HashSet"];

fn path_in(rel_path: &str, list: &[&str]) -> bool {
    list.contains(&rel_path)
}

fn is_restricted_for_iteration(rel_path: &str) -> bool {
    UNORDERED_RESTRICTED.iter().any(|p| rel_path.starts_with(p))
}

/// True for `crates/<name>/src/lib.rs`, `crates/<name>/src/main.rs` and
/// `crates/<name>/src/bin/<file>.rs` — the compilation roots that must
/// carry `#![forbid(unsafe_code)]`.
fn is_crate_root(rel_path: &str) -> bool {
    let parts: Vec<&str> = rel_path.split('/').collect();
    match parts.as_slice() {
        ["crates", _, "src", f] => *f == "lib.rs" || *f == "main.rs",
        ["crates", _, "src", "bin", f] => f.ends_with(".rs"),
        _ => false,
    }
}

/// Runs every source-level rule over one Rust file. `rel_path` is the
/// workspace-relative path with `/` separators; it selects the per-file
/// allowlists, so callers (and tests) can present a source under any
/// policy position they like.
pub fn check_rust_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let scanned = scan(source);
    let mut findings = Vec::new();

    check_waiver_health(rel_path, &scanned, &mut findings);
    check_wall_clock(rel_path, &scanned, &mut findings);
    check_ambient_entropy(rel_path, &scanned, &mut findings);
    check_raw_threads(rel_path, &scanned, &mut findings);
    if is_restricted_for_iteration(rel_path) {
        check_unordered_iteration(rel_path, &scanned, &mut findings);
    }
    check_unsafe(rel_path, &scanned, &mut findings);

    findings.sort();
    findings
}

/// Pushes `finding` unless a well-formed waiver covers it.
pub(crate) fn push_unless_waived(
    scanned: &ScannedFile,
    findings: &mut Vec<Finding>,
    rel_path: &str,
    line: usize,
    rule: &'static str,
    message: String,
) {
    if !scanned.is_waived(rule, line) {
        findings.push(Finding {
            file: rel_path.to_string(),
            line,
            rule,
            message,
        });
    }
}

fn check_waiver_health(rel_path: &str, scanned: &ScannedFile, findings: &mut Vec<Finding>) {
    for m in &scanned.malformed_waivers {
        findings.push(Finding {
            file: rel_path.to_string(),
            line: m.line,
            rule: BAD_WAIVER,
            message: m.problem.clone(),
        });
    }
    for w in &scanned.waivers {
        if !ALL_RULES.contains(&w.rule.as_str()) {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: w.line,
                rule: BAD_WAIVER,
                message: format!("waiver names unknown rule `{}`", w.rule),
            });
        } else if w.rule == BAD_WAIVER {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: w.line,
                rule: BAD_WAIVER,
                message: "`bad-waiver` cannot itself be waived".to_string(),
            });
        }
    }
}

fn check_wall_clock(rel_path: &str, scanned: &ScannedFile, findings: &mut Vec<Finding>) {
    if path_in(rel_path, &WALL_CLOCK_ALLOWED) {
        return;
    }
    for t in &scanned.tokens {
        if t.text == "Instant" || t.text == "SystemTime" {
            push_unless_waived(
                scanned,
                findings,
                rel_path,
                t.line,
                NO_WALL_CLOCK,
                format!(
                    "`{}` outside the sanctioned wall-clock files (telemetry wall_ms, bench harness)",
                    t.text
                ),
            );
        }
    }
}

fn check_ambient_entropy(rel_path: &str, scanned: &ScannedFile, findings: &mut Vec<Finding>) {
    for t in &scanned.tokens {
        if ENTROPY_IDENTS.contains(&t.text.as_str()) {
            push_unless_waived(
                scanned,
                findings,
                rel_path,
                t.line,
                NO_AMBIENT_ENTROPY,
                format!("`{}` draws entropy from the environment; all randomness must flow from seeded `mdbs_stats::rng` streams", t.text),
            );
        }
    }
    if path_in(rel_path, &ENTROPY_ALLOWED) {
        return;
    }
    for t in &scanned.tokens {
        let lowered = t.text.to_ascii_lowercase();
        let is_impl_marker = RNG_IMPL_IDENTS
            .iter()
            .any(|m| lowered == m.to_ascii_lowercase())
            || normalized_hex(&t.text).as_deref() == Some(SPLITMIX64_GAMMA);
        if is_impl_marker {
            push_unless_waived(
                scanned,
                findings,
                rel_path,
                t.line,
                NO_AMBIENT_ENTROPY,
                format!(
                    "`{}` looks like an RNG implementation outside `mdbs_stats::rng`",
                    t.text
                ),
            );
        }
    }
}

/// Lower-cases a hex literal and strips `_` separators; `None` for
/// anything that is not a `0x` literal.
fn normalized_hex(token: &str) -> Option<String> {
    let lowered = token.to_ascii_lowercase();
    lowered.starts_with("0x").then(|| lowered.replace('_', ""))
}

fn check_raw_threads(rel_path: &str, scanned: &ScannedFile, findings: &mut Vec<Finding>) {
    if path_in(rel_path, &RAW_THREADS_ALLOWED) {
        return;
    }
    let toks = &scanned.tokens;
    for i in 0..toks.len().saturating_sub(3) {
        if toks[i].text == "thread"
            && toks[i + 1].text == ":"
            && toks[i + 2].text == ":"
            && matches!(toks[i + 3].text.as_str(), "spawn" | "scope" | "Builder")
        {
            push_unless_waived(
                scanned,
                findings,
                rel_path,
                toks[i + 3].line,
                NO_RAW_THREADS,
                format!(
                    "`thread::{}` outside `mdbs_core::pool`; fan work out through the pool",
                    toks[i + 3].text
                ),
            );
        }
    }
}

fn check_unsafe(rel_path: &str, scanned: &ScannedFile, findings: &mut Vec<Finding>) {
    for t in &scanned.tokens {
        if t.text == "unsafe" {
            push_unless_waived(
                scanned,
                findings,
                rel_path,
                t.line,
                NO_UNSAFE,
                "`unsafe` is forbidden throughout the workspace".to_string(),
            );
        }
    }
    if is_crate_root(rel_path) && !has_forbid_unsafe(&scanned.tokens) {
        push_unless_waived(
            scanned,
            findings,
            rel_path,
            1,
            NO_UNSAFE,
            "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
        );
    }
}

fn has_forbid_unsafe(toks: &[Token]) -> bool {
    const PAT: [&str; 8] = ["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"];
    toks.windows(PAT.len())
        .any(|w| w.iter().zip(PAT).all(|(t, p)| t.text == p))
}

// ---------------------------------------------------------------------------
// no-unordered-iteration: token-level taint analysis.
// ---------------------------------------------------------------------------

fn check_unordered_iteration(rel_path: &str, scanned: &ScannedFile, findings: &mut Vec<Finding>) {
    let toks = &scanned.tokens;
    let (unordered_types, tainted) = collect_taint(toks);

    for i in 0..toks.len() {
        if !ITER_METHODS.contains(&toks[i].text.as_str()) {
            continue;
        }
        if i + 1 >= toks.len() || toks[i + 1].text != "(" {
            continue;
        }
        if i == 0 || toks[i - 1].text != "." {
            continue; // not a method call
        }
        if !receiver_chain_tainted(toks, i - 1, &unordered_types, &tainted) {
            continue;
        }
        if has_order_evidence(toks, i) {
            continue;
        }
        push_unless_waived(
            scanned,
            findings,
            rel_path,
            toks[i].line,
            NO_UNORDERED_ITERATION,
            format!(
                "`.{}()` over an unordered map/set with no ordering evidence within {} tokens (sort, BTree collect, or an order-insensitive reduction)",
                toks[i].text, ORDER_EVIDENCE_WINDOW
            ),
        );
    }
}

/// Collects `(unordered type names, tainted value names)` for one file.
///
/// Type names: `HashMap`/`HashSet` plus every `type X = …;` alias whose
/// right-hand side mentions one. Value names: identifiers whose declared
/// type, initializer, or `for`-loop source mentions an unordered type or an
/// already-tainted name. Runs to a small fixpoint so declaration order
/// does not matter.
fn collect_taint(toks: &[Token]) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut types: BTreeSet<String> = UNORDERED_BASE_TYPES.iter().map(|s| s.to_string()).collect();
    let mut tainted: BTreeSet<String> = BTreeSet::new();

    for _ in 0..4 {
        let before = (types.len(), tainted.len());

        // `type Alias = … HashMap … ;`
        for i in 0..toks.len() {
            if toks[i].text == "type" && i + 1 < toks.len() && is_ident(&toks[i + 1].text) {
                let rhs_hit = toks[i + 2..]
                    .iter()
                    .take_while(|t| t.text != ";")
                    .take(40)
                    .any(|t| types.contains(&t.text));
                if rhs_hit {
                    types.insert(toks[i + 1].text.clone());
                }
            }
        }

        for i in 0..toks.len() {
            // `name : <type…>` — field declarations, lets with ascription,
            // fn params, struct-literal fields whose value builds a map.
            if is_ident(&toks[i].text)
                && i + 2 < toks.len()
                && toks[i + 1].text == ":"
                && toks[i + 2].text != ":"
                && (i == 0 || toks[i - 1].text != ":")
                && window_mentions(&toks[i + 2..], &types, &tainted)
            {
                tainted.insert(toks[i].text.clone());
            }
            // `name = … HashMap::new() …`
            if is_ident(&toks[i].text)
                && i + 2 < toks.len()
                && toks[i + 1].text == "="
                && toks[i + 2].text != "="
                && (i == 0 || !matches!(toks[i - 1].text.as_str(), "=" | "<" | ">" | "!"))
                && toks[i + 2..]
                    .iter()
                    .take(10)
                    .any(|t| types.contains(&t.text))
            {
                tainted.insert(toks[i].text.clone());
            }
            // `for <pattern> in <expr> {` — taint the pattern bindings when
            // the iterated expression touches tainted state.
            if toks[i].text == "for" {
                let mut j = i + 1;
                let mut pattern = Vec::new();
                while j < toks.len() && toks[j].text != "in" && toks[j].text != "{" && j < i + 16 {
                    if is_ident(&toks[j].text) && toks[j].text != "mut" {
                        pattern.push(toks[j].text.clone());
                    }
                    j += 1;
                }
                if j >= toks.len() || toks[j].text != "in" {
                    continue; // `impl … for …` or an overlong pattern
                }
                let expr_hit = toks[j + 1..]
                    .iter()
                    .take_while(|t| t.text != "{")
                    .take(40)
                    .any(|t| types.contains(&t.text) || tainted.contains(&t.text));
                if expr_hit {
                    for name in pattern {
                        tainted.insert(name);
                    }
                }
            }
        }

        if (types.len(), tainted.len()) == before {
            break;
        }
    }
    (types, tainted)
}

/// Looks through a declared-type window (up to 40 tokens, stopping at a
/// top-level `,` `;` `=` `{` or `)`) for an unordered type or tainted name.
fn window_mentions(toks: &[Token], types: &BTreeSet<String>, tainted: &BTreeSet<String>) -> bool {
    let mut depth: i32 = 0;
    for t in toks.iter().take(40) {
        match t.text.as_str() {
            "<" | "(" | "[" => depth += 1,
            ">" | ")" | "]" => {
                if depth == 0 {
                    return false;
                }
                depth -= 1;
            }
            "," | ";" | "=" | "{" if depth == 0 => return false,
            _ => {
                if types.contains(&t.text) || tainted.contains(&t.text) {
                    return true;
                }
            }
        }
    }
    false
}

/// Walks a method-call receiver chain backwards from the `.` at `dot`,
/// skipping balanced `(…)`/`[…]`/turbofish groups, and reports whether any
/// identifier on the chain is tainted (or is an unordered type itself,
/// catching `HashMap::new().iter()`).
fn receiver_chain_tainted(
    toks: &[Token],
    dot: usize,
    types: &BTreeSet<String>,
    tainted: &BTreeSet<String>,
) -> bool {
    let mut j = dot as isize - 1;
    let mut steps = 0;
    while j >= 0 && steps < 200 {
        steps += 1;
        let text = toks[j as usize].text.as_str();
        match text {
            ")" | "]" | ">" => {
                let open = match text {
                    ")" => "(",
                    "]" => "[",
                    _ => "<",
                };
                let close = text;
                let mut depth = 1;
                j -= 1;
                while j >= 0 && depth > 0 {
                    let t = toks[j as usize].text.as_str();
                    if t == close {
                        depth += 1;
                    } else if t == open {
                        depth -= 1;
                    }
                    j -= 1;
                }
            }
            "?" | "&" | "." | ":" | "*" => j -= 1,
            _ if is_ident(text) => {
                if types.contains(text) || tainted.contains(text) {
                    return true;
                }
                // Continue only through `.` / `::` chains.
                if j > 0
                    && (toks[j as usize - 1].text == "."
                        || (toks[j as usize - 1].text == ":" && j > 1))
                {
                    j -= 1;
                } else {
                    return false;
                }
            }
            _ => return false,
        }
    }
    false
}

/// True when ordering evidence appears within [`ORDER_EVIDENCE_WINDOW`]
/// tokens after the iteration call at `i`.
fn has_order_evidence(toks: &[Token], i: usize) -> bool {
    toks[i + 1..]
        .iter()
        .take(ORDER_EVIDENCE_WINDOW)
        .any(|t| ORDER_EVIDENCE.contains(&t.text.as_str()))
}

fn is_ident(text: &str) -> bool {
    let mut chars = text.chars();
    matches!(chars.next(), Some(c) if c.is_alphabetic() || c == '_')
}

// ---------------------------------------------------------------------------
// hermetic-manifests
// ---------------------------------------------------------------------------

/// True for any `[…]` section header that declares dependencies; carries
/// the dependency name for the `[dependencies.<name>]` long form.
fn dependency_section(header: &str) -> Option<Option<String>> {
    let inner = header.trim().trim_start_matches('[').trim_end_matches(']');
    let parts: Vec<&str> = inner.split('.').collect();
    for (i, part) in parts.iter().enumerate() {
        if part.ends_with("dependencies") {
            return Some(parts.get(i + 1).map(|s| s.trim().to_string()));
        }
    }
    None
}

/// Checks one manifest against the in-tree whitelist: every dependency —
/// regular, dev, build, workspace-table or long-form — must name an
/// in-tree crate and resolve by `path`/`workspace`, never a registry
/// version. `allowed` is the set of in-tree package names.
pub fn check_manifest_text(rel_path: &str, text: &str, allowed: &BTreeSet<String>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut in_dep_section = false;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            match dependency_section(line) {
                Some(Some(name)) => {
                    in_dep_section = false;
                    if !allowed.contains(&name) {
                        findings.push(Finding {
                            file: rel_path.to_string(),
                            line: lineno,
                            rule: HERMETIC_MANIFESTS,
                            message: format!("dependency section `{line}` names `{name}`, which is not an in-tree crate"),
                        });
                    }
                }
                Some(None) => in_dep_section = true,
                None => in_dep_section = false,
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let Some((name, value)) = line.split_once('=') else {
            continue;
        };
        let name = name.trim().trim_matches('"');
        if !allowed.contains(name) {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: lineno,
                rule: HERMETIC_MANIFESTS,
                message: format!(
                    "dependency `{name}` is not an in-tree crate (zero-external-dependency policy)"
                ),
            });
        } else if !value.contains("path") && !value.contains("workspace") {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: lineno,
                rule: HERMETIC_MANIFESTS,
                message: format!(
                    "`{name}` must be a path or workspace dependency, got `{}`",
                    value.trim()
                ),
            });
        }
    }
    findings
}

/// Extracts the `[package] name = "…"` from a manifest, if any.
pub fn package_name(text: &str) -> Option<String> {
    let mut in_package = false;
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some((key, value)) = line.split_once('=') {
                if key.trim() == "name" {
                    return Some(value.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn wall_clock_flagged_outside_allowlist_only() {
        let src = "use std::time::Instant;\n";
        assert_eq!(
            rules_of(&check_rust_source("crates/core/src/derive.rs", src)),
            vec![NO_WALL_CLOCK]
        );
        assert!(check_rust_source("crates/obs/src/telemetry.rs", src).is_empty());
        assert!(check_rust_source("crates/bench/src/harness.rs", src).is_empty());
    }

    #[test]
    fn waiver_on_same_or_previous_line_suppresses() {
        let trailing =
            "let t = Instant::now(); // lint:allow(no-wall-clock): speedup table is wall-clock\n";
        assert!(check_rust_source("crates/core/src/x.rs", trailing).is_empty());
        let above =
            "// lint:allow(no-wall-clock): speedup table is wall-clock\nlet t = Instant::now();\n";
        assert!(check_rust_source("crates/core/src/x.rs", above).is_empty());
        let far = "// lint:allow(no-wall-clock): too far away\n\nlet t = Instant::now();\n";
        assert_eq!(
            rules_of(&check_rust_source("crates/core/src/x.rs", far)),
            vec![NO_WALL_CLOCK]
        );
    }

    #[test]
    fn ambient_entropy_and_rng_reimpl_flagged() {
        let f = check_rust_source(
            "crates/sim/src/x.rs",
            "use std::collections::hash_map::RandomState;\n",
        );
        assert_eq!(rules_of(&f), vec![NO_AMBIENT_ENTROPY]);
        let f = check_rust_source(
            "crates/sim/src/x.rs",
            "state.wrapping_add(0x9E37_79B9_7F4A_7C15);\n",
        );
        assert_eq!(rules_of(&f), vec![NO_AMBIENT_ENTROPY]);
        // The real implementation file is exempt from the reimpl markers…
        assert!(check_rust_source(
            "crates/stats/src/rng.rs",
            "fn splitmix64(s: &mut u64) -> u64 { 0x9E37_79B9_7F4A_7C15 }"
        )
        .is_empty());
        // …but not from true ambient sources.
        assert_eq!(
            rules_of(&check_rust_source(
                "crates/stats/src/rng.rs",
                "let h = RandomState::new();"
            )),
            vec![NO_AMBIENT_ENTROPY]
        );
    }

    #[test]
    fn raw_threads_flagged_outside_pool() {
        for call in ["thread::spawn", "std::thread::scope", "thread::Builder"] {
            let src = format!("{call}(|| {{}});\n");
            assert_eq!(
                rules_of(&check_rust_source("crates/sim/src/x.rs", &src)),
                vec![NO_RAW_THREADS],
                "{call}"
            );
            assert!(
                check_rust_source("crates/core/src/pool.rs", &src).is_empty(),
                "{call} allowed in pool"
            );
        }
    }

    #[test]
    fn unordered_iteration_needs_evidence_in_restricted_crates() {
        let bare =
            "let m: HashMap<u32, u32> = HashMap::new();\nfor (k, v) in m.iter() { emit(k, v); }\n";
        assert_eq!(
            rules_of(&check_rust_source("crates/core/src/x.rs", bare)),
            vec![NO_UNORDERED_ITERATION]
        );
        // Outside the restricted crates the rule does not apply.
        assert!(check_rust_source("crates/obs/src/x.rs", bare).is_empty());
        // Sorting right after the collect is evidence.
        let sorted = "let m: HashMap<u32, u32> = HashMap::new();\nlet mut ks: Vec<u32> = m.keys().cloned().collect();\nks.sort();\n";
        assert!(check_rust_source("crates/core/src/x.rs", sorted).is_empty());
        // An order-insensitive reduction is evidence.
        let summed = "let m: HashMap<u32, u32> = HashMap::new();\nlet n: u32 = m.values().sum();\n";
        assert!(check_rust_source("crates/core/src/x.rs", summed).is_empty());
        // Vec iteration in the same file is not tainted.
        let vecs = "let m: HashMap<u32, u32> = HashMap::new();\nlet v: Vec<u32> = vec![];\nfor x in v.iter() { emit(x); }\n";
        assert!(check_rust_source("crates/core/src/x.rs", vecs).is_empty());
    }

    #[test]
    fn taint_flows_through_aliases_locks_and_for_bindings() {
        let src = "type Shard = RwLock<HashMap<u32, u32>>;\nstruct R { shards: Vec<Shard> }\nfn f(r: &R) {\n  for shard in &r.shards {\n    for (k, v) in shard.read().expect(\"lock\").iter() { emit(k, v); }\n  }\n}\n";
        let f = check_rust_source("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&f), vec![NO_UNORDERED_ITERATION]);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn unsafe_token_and_missing_forbid_flagged() {
        let f = check_rust_source("crates/core/src/x.rs", "unsafe { *p }\n");
        assert_eq!(rules_of(&f), vec![NO_UNSAFE]);
        // A crate root without the attribute is a finding at line 1…
        let f = check_rust_source("crates/core/src/lib.rs", "pub mod x;\n");
        assert_eq!(rules_of(&f), vec![NO_UNSAFE]);
        assert_eq!(f[0].line, 1);
        // …and with it, clean. A non-root file does not need it.
        assert!(check_rust_source(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod x;\n"
        )
        .is_empty());
        assert!(check_rust_source("crates/core/src/x.rs", "pub fn f() {}\n").is_empty());
    }

    #[test]
    fn bin_roots_are_crate_roots() {
        assert!(is_crate_root("crates/cli/src/main.rs"));
        assert!(is_crate_root("crates/bench/src/bin/repro.rs"));
        assert!(is_crate_root("crates/core/src/lib.rs"));
        assert!(!is_crate_root("crates/core/src/derive.rs"));
        assert!(!is_crate_root("tests/parallel.rs"));
    }

    #[test]
    fn bad_waivers_are_findings_and_unwaivable() {
        let f = check_rust_source("crates/core/src/x.rs", "// lint:allow(no-wall-clock)\n");
        assert_eq!(rules_of(&f), vec![BAD_WAIVER]);
        let f = check_rust_source(
            "crates/core/src/x.rs",
            "// lint:allow(no-such-rule): because\n",
        );
        assert_eq!(rules_of(&f), vec![BAD_WAIVER]);
        let f = check_rust_source(
            "crates/core/src/x.rs",
            "// lint:allow(bad-waiver): nice try\n",
        );
        assert_eq!(rules_of(&f), vec![BAD_WAIVER]);
    }

    #[test]
    fn manifest_whitelist_flags_external_and_registry_deps() {
        let allowed: BTreeSet<String> = ["mdbs-core", "mdbs-stats"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let good = "[dependencies]\nmdbs-core = { workspace = true }\n";
        assert!(check_manifest_text("crates/x/Cargo.toml", good, &allowed).is_empty());
        let external = "[dependencies]\nrand = \"0.8\"\n";
        let f = check_manifest_text("crates/x/Cargo.toml", external, &allowed);
        assert_eq!(rules_of(&f), vec![HERMETIC_MANIFESTS]);
        assert_eq!(f[0].line, 2);
        let registry = "[dependencies]\nmdbs-stats = \"0.1\"\n";
        let f = check_manifest_text("crates/x/Cargo.toml", registry, &allowed);
        assert_eq!(rules_of(&f), vec![HERMETIC_MANIFESTS]);
        let longform = "[dependencies.serde]\nversion = \"1\"\n";
        let f = check_manifest_text("crates/x/Cargo.toml", longform, &allowed);
        assert_eq!(rules_of(&f), vec![HERMETIC_MANIFESTS]);
        let dev = "[dev-dependencies]\ncriterion = \"0.5\"\n";
        let f = check_manifest_text("crates/x/Cargo.toml", dev, &allowed);
        assert_eq!(rules_of(&f), vec![HERMETIC_MANIFESTS]);
    }

    #[test]
    fn package_name_parses() {
        assert_eq!(
            package_name("[package]\nname = \"mdbs-lint\"\nversion = \"0.1.0\"\n").as_deref(),
            Some("mdbs-lint")
        );
        assert_eq!(package_name("[workspace]\nmembers = []\n"), None);
    }
}
