//! `mdbs-lint` — machine-checks the workspace's determinism, hermeticity
//! and concurrency policy. See [`mdbs_lint`] for the rules.
//!
//! ```text
//! mdbs-lint [WORKSPACE_ROOT]
//! ```
//!
//! Walks the workspace (default: the current directory) and prints every
//! policy violation as a sorted, deterministic `file:line rule message`
//! line on stdout. Exit codes:
//!
//! * `0` — no findings (nothing printed),
//! * `1` — findings printed,
//! * `2` — usage or I/O error (message on stderr).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = match args.as_slice() {
        [] => PathBuf::from("."),
        [root] if !root.starts_with('-') => PathBuf::from(root),
        _ => {
            eprintln!("usage: mdbs-lint [WORKSPACE_ROOT]");
            return ExitCode::from(2);
        }
    };
    match mdbs_lint::check_workspace(&root) {
        Ok(findings) if findings.is_empty() => ExitCode::SUCCESS,
        Ok(findings) => {
            print!("{}", mdbs_lint::render(&findings));
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("mdbs-lint: {e}");
            ExitCode::from(2)
        }
    }
}
