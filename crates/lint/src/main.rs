//! `mdbs-lint` — machine-checks the workspace's determinism, hermeticity
//! and concurrency policy. See [`mdbs_lint`] for the rules.
//!
//! ```text
//! mdbs-lint [WORKSPACE_ROOT] [--json PATH]
//! ```
//!
//! Walks the workspace (default: the current directory) and prints every
//! policy violation as a sorted, deterministic `file:line rule message`
//! line on stdout. With `--json PATH`, additionally writes the findings as
//! a byte-stable JSON report (validated by `lint-json-check`, the same way
//! `bench-json-check` validates bench reports). Exit codes:
//!
//! * `0` — no findings (nothing printed),
//! * `1` — findings printed,
//! * `2` — usage or I/O error (message on stderr).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: mdbs-lint [WORKSPACE_ROOT] [--json PATH]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            match args.next() {
                Some(p) if json_path.is_none() => json_path = Some(PathBuf::from(p)),
                _ => return usage(),
            }
        } else if arg.starts_with('-') || root.is_some() {
            return usage();
        } else {
            root = Some(PathBuf::from(arg));
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    match mdbs_lint::check_workspace(&root) {
        Ok(findings) => {
            if let Some(path) = &json_path {
                if let Err(e) = std::fs::write(path, mdbs_lint::render_json(&findings)) {
                    eprintln!("mdbs-lint: writing {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                print!("{}", mdbs_lint::render(&findings));
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("mdbs-lint: {e}");
            ExitCode::from(2)
        }
    }
}
