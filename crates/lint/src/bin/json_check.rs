//! Validates an `mdbs-lint --json` report.
//!
//! CI runs the lint with `--json PATH` and then this checker against the
//! produced file, mirroring `bench-json-check`: a regression in the report
//! shape fails the pipeline instead of producing an unparseable artifact.
//! Exit status 0 means the file parses, carries the expected fields, and
//! `finding_count` agrees with the `findings` array (which, unlike a bench
//! report, may legitimately be empty).

#![forbid(unsafe_code)]

use mdbs_obs::json::{parse, Json};

fn fail(msg: &str) -> ! {
    eprintln!("lint-json-check: {msg}");
    std::process::exit(1);
}

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => fail("usage: lint-json-check <report.json>"),
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => fail(&format!("reading {path}: {e}")),
    };
    let doc = match parse(&text) {
        Ok(d) => d,
        Err(e) => fail(&format!("{path}: invalid JSON: {e}")),
    };
    let title = doc
        .get("title")
        .and_then(Json::as_str)
        .unwrap_or_else(|| fail(&format!("{path}: missing string `title`")));
    let count = doc
        .get("finding_count")
        .and_then(Json::as_i64)
        .unwrap_or_else(|| fail(&format!("{path}: missing integer `finding_count`")));
    let findings = match doc.get("findings") {
        Some(Json::Arr(items)) => items,
        _ => fail(&format!("{path}: missing array `findings`")),
    };
    if count != findings.len() as i64 {
        fail(&format!(
            "{path}: finding_count {count} != findings length {}",
            findings.len()
        ));
    }
    for (i, f) in findings.iter().enumerate() {
        for field in ["file", "rule", "message"] {
            if f.get(field).and_then(Json::as_str).is_none() {
                fail(&format!("{path}: finding {i}: missing string `{field}`"));
            }
        }
        let line = f
            .get("line")
            .and_then(Json::as_i64)
            .unwrap_or_else(|| fail(&format!("{path}: finding {i}: missing integer `line`")));
        if line <= 0 {
            fail(&format!(
                "{path}: finding {i}: non-positive `line` ({line})"
            ));
        }
    }
    println!(
        "lint-json-check: {path} ok — `{title}`, {} finding(s)",
        findings.len()
    );
}
