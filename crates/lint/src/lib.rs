//! # mdbs-lint
//!
//! In-tree static analysis for the workspace's determinism, hermeticity
//! and concurrency policy (DESIGN §5). The runtime byte-compare gates
//! (`tests/determinism.rs`, `tests/parallel.rs`, the ci.sh `--jobs` sweep)
//! catch a nondeterminism bug only when the seed and the schedule happen to
//! expose it; this crate enforces the *source-level* invariants those
//! gates rely on, on every commit:
//!
//! * **`no-wall-clock`** — `Instant`/`SystemTime` only in the telemetry
//!   `wall_ms` path and the bench harness.
//! * **`no-ambient-entropy`** — no environment entropy (`RandomState`,
//!   `thread_rng`, …) anywhere, and no RNG implementation outside
//!   `mdbs_stats::rng`; every stream is split from a seed.
//! * **`no-raw-threads`** — `thread::{spawn,scope,Builder}` only in
//!   `mdbs_core::pool`.
//! * **`no-unordered-iteration`** — no `HashMap`/`HashSet` iteration on
//!   the output-relevant crates (core/sim/stats/cli) without ordering
//!   evidence.
//! * **`no-unsafe`** — no `unsafe` tokens; every crate root carries
//!   `#![forbid(unsafe_code)]`.
//! * **`hermetic-manifests`** — every manifest dependency is an in-tree
//!   path crate (the zero-external-dependency policy).
//!
//! Sanctioned exceptions are written in the code as
//! `// lint:allow(<rule>): <justification>` on (or directly above) the
//! offending line. The justification is mandatory — a bare waiver is a
//! **`bad-waiver`** finding in its own right, so every exception in the
//! tree carries its reason next to it.
//!
//! Diagnostics are emitted as deterministic, sorted
//! `file:line rule message` lines, so the lint's own output is byte-stable
//! and CI can diff two runs to assert it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod context;
pub mod deprecation;
pub mod graph;
pub mod rules;
pub mod scanner;
pub mod telemetry_registry;

pub use rules::{
    check_manifest_text, check_rust_source, ALL_RULES, BAD_WAIVER, EXPIRED_DEPRECATION,
    HERMETIC_MANIFESTS, NO_AMBIENT_ENTROPY, NO_RAW_THREADS, NO_UNORDERED_ITERATION, NO_UNSAFE,
    NO_WALL_CLOCK, SERIAL_ONLY_ESCAPE, UNREGISTERED_METRIC,
};

use mdbs_obs::json::Json;
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One diagnostic: a policy violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule's id.
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{} {} {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Renders findings one per line, in their (already sorted) order.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    out
}

/// Renders findings as a machine-readable JSON report (the `--json PATH`
/// output), in the same schema style as the bench harness reports: a
/// `title`, a count, and one object per (already sorted) finding. The
/// rendering is compact and insertion-ordered, so two runs over the same
/// tree produce byte-identical files.
pub fn render_json(findings: &[Finding]) -> String {
    let items: Vec<Json> = findings
        .iter()
        .map(|f| {
            Json::Obj(vec![
                ("file".into(), Json::Str(f.file.clone())),
                ("line".into(), Json::Int(f.line as i64)),
                ("rule".into(), Json::Str(f.rule.to_string())),
                ("message".into(), Json::Str(f.message.clone())),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        ("title".into(), Json::Str("mdbs-lint".into())),
        ("finding_count".into(), Json::Int(findings.len() as i64)),
        ("findings".into(), Json::Arr(items)),
    ]);
    let mut out = doc.render();
    out.push('\n');
    out
}

/// One source file prepared for the workspace passes: its scanned token
/// stream plus the extracted call-graph structure.
#[derive(Debug)]
pub struct AnalyzedFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// The scanner's view: tokens, strings, waivers, ctx annotations.
    pub scanned: scanner::ScannedFile,
    /// The structural view: fn defs, call sites, worker regions.
    pub graph: graph::FileGraph,
}

/// Scans and extracts one source file for the workspace passes.
pub fn analyze_source(path: &str, source: &str) -> AnalyzedFile {
    let scanned = scanner::scan(source);
    let graph = graph::extract(&scanned);
    AnalyzedFile {
        path: path.to_string(),
        scanned,
        graph,
    }
}

/// Directory names the walker never descends into: build artifacts,
/// version control, and the lint's own intentionally-violating fixtures.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "fixtures"];

/// Recursively collects files under `dir` whose name satisfies `want`,
/// in sorted order for deterministic output.
fn walk(dir: &Path, want: &dyn Fn(&str) -> bool, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(&path, want, out)?;
        } else if want(&name) {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// The set of in-tree package names: every `crates/*/Cargo.toml`'s
/// `[package] name`. This *is* the dependency whitelist — a crate may
/// depend on the workspace's own path crates and nothing else.
pub fn in_tree_package_names(root: &Path) -> io::Result<BTreeSet<String>> {
    let crates = root.join("crates");
    let mut names = BTreeSet::new();
    let mut entries: Vec<PathBuf> = fs::read_dir(&crates)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for entry in entries {
        let manifest = entry.join("Cargo.toml");
        if manifest.is_file() {
            if let Some(name) = rules::package_name(&fs::read_to_string(&manifest)?) {
                names.insert(name);
            }
        }
    }
    Ok(names)
}

/// Runs the `hermetic-manifests` rule alone: checks the root manifest and
/// every crate manifest against the in-tree whitelist.
/// `tests/hermetic.rs` is a thin wrapper over this function, so the
/// manifest whitelist lives in exactly one place.
pub fn check_manifests(root: &Path) -> io::Result<Vec<Finding>> {
    let allowed = in_tree_package_names(root)?;
    if allowed.len() < 2 {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!(
                "{} does not look like the workspace root (found {} crate manifest(s) under crates/)",
                root.display(),
                allowed.len()
            ),
        ));
    }
    let mut manifests = vec![root.join("Cargo.toml")];
    let mut entries: Vec<PathBuf> = fs::read_dir(root.join("crates"))?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for entry in entries {
        let manifest = entry.join("Cargo.toml");
        if manifest.is_file() {
            manifests.push(manifest);
        }
    }
    let mut findings = Vec::new();
    for manifest in manifests {
        let text = fs::read_to_string(&manifest)?;
        findings.extend(check_manifest_text(
            &rel_path(root, &manifest),
            &text,
            &allowed,
        ));
    }
    findings.sort();
    Ok(findings)
}

/// True when `rel` is production source the workspace passes analyze:
/// `crates/<crate>/src/**.rs` (integration tests, fixtures and examples
/// are out of scope — tests may exercise serving invariants deliberately).
pub fn is_workspace_pass_source(rel: &str) -> bool {
    let Some(rest) = rel.strip_prefix("crates/") else {
        return false;
    };
    match rest.split_once('/') {
        Some((_crate_dir, tail)) => tail.starts_with("src/"),
        None => false,
    }
}

/// Runs every rule over the whole workspace at `root`: all `.rs` files
/// (skipping `target/`, dot-directories and `fixtures/`) plus all
/// manifests, then the three workspace passes (context analysis, the
/// telemetry-name registry, deprecation expiry) over `crates/*/src`.
/// Findings come back sorted and deduplicated, so rendering them is
/// byte-stable across runs and machines.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = check_manifests(root)?;
    let mut sources = Vec::new();
    walk(root, &|name| name.ends_with(".rs"), &mut sources)?;
    let mut analyzed = Vec::new();
    for path in sources {
        let text = fs::read_to_string(&path)?;
        let rel = rel_path(root, &path);
        findings.extend(check_rust_source(&rel, &text));
        if is_workspace_pass_source(&rel) {
            analyzed.push(analyze_source(&rel, &text));
        }
    }
    findings.extend(context::check_context(&analyzed));
    let registry_text = fs::read_to_string(root.join(telemetry_registry::REGISTRY_PATH)).ok();
    findings.extend(telemetry_registry::check_telemetry(
        &analyzed,
        registry_text.as_deref(),
    ));
    if let Ok(manifest) = fs::read_to_string(root.join("Cargo.toml")) {
        if let Some(version) = deprecation::workspace_version(&manifest) {
            findings.extend(deprecation::check_deprecations(&analyzed, &version));
        }
    }
    findings.sort();
    findings.dedup();
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_display_matches_the_documented_format() {
        let f = Finding {
            file: "crates/core/src/x.rs".into(),
            line: 7,
            rule: rules::NO_WALL_CLOCK,
            message: "boom".into(),
        };
        assert_eq!(f.to_string(), "crates/core/src/x.rs:7 no-wall-clock boom");
        assert_eq!(render(&[f]), "crates/core/src/x.rs:7 no-wall-clock boom\n");
    }

    #[test]
    fn findings_sort_by_file_then_line_then_rule() {
        let mut v = [
            Finding {
                file: "b.rs".into(),
                line: 1,
                rule: rules::NO_UNSAFE,
                message: String::new(),
            },
            Finding {
                file: "a.rs".into(),
                line: 9,
                rule: rules::NO_WALL_CLOCK,
                message: String::new(),
            },
            Finding {
                file: "a.rs".into(),
                line: 2,
                rule: rules::NO_WALL_CLOCK,
                message: String::new(),
            },
        ];
        v.sort();
        assert_eq!(v[0].file, "a.rs");
        assert_eq!(v[0].line, 2);
        assert_eq!(v[2].file, "b.rs");
    }
}
