//! The `unregistered-metric` telemetry-name registry pass.
//!
//! The `serve.*` / `fit.*` / `maintenance.*` / `pool.sched.*` name space is
//! an interface: ci.sh determinism gates grep it, the `stats` subcommand
//! parses it, and the flight-recorder event kinds key the accuracy ledger.
//! This pass pins it. Every string literal passed to a telemetry
//! constructor across `crates/{core,obs,cli,sim}/src` must appear in the
//! committed [`REGISTRY_PATH`] file, and every exact entry in that file
//! must still be emitted somewhere — so the registry can neither rot ahead
//! of the code nor trail behind it.
//!
//! Registry grammar (one entry per line, `#` comments):
//!
//! ```text
//! <name> <kind> <owning-module> <determinism>
//! serve.requests        counter core/server deterministic
//! pool.sched.steals     counter core/pool   sched
//! serve.ledger.*        gauge   obs/recorder deterministic
//! ```
//!
//! * `kind` ∈ `counter | gauge | histogram | span | event`, matching the
//!   constructor that emits the name (`inc`, `gauge`/`set_gauge`/
//!   `add_gauge`, `observe`, `begin_span`, `record_event`/`record_request`).
//! * A name ending in `.*` is a **prefix entry** for dynamically-built
//!   names; it is exempt from the still-emitted check.
//! * `determinism` is `sched` exactly for names under the sanctioned
//!   scheduling-dependent prefixes (`pool.sched.`, mirrored from
//!   `mdbs_obs::telemetry::SCHEDULING_METRIC_PREFIXES`), `deterministic`
//!   for everything else; a mismatched flag is itself a finding.
//!
//! A constructor whose name argument is built with `format!` cannot be
//! checked statically and is a finding, waivable when the produced names
//! fall under a registered prefix entry. A name smuggled through a plain
//! variable escapes extraction (documented limit) — but its registry entry
//! then trips the still-emitted check, so the evasion is loud.

use crate::rules::{push_unless_waived, UNREGISTERED_METRIC};
use crate::{AnalyzedFile, Finding};
use std::collections::BTreeMap;

/// Workspace-relative path of the committed registry file.
pub const REGISTRY_PATH: &str = "crates/lint/telemetry.registry";

/// Crate source trees whose telemetry emissions are checked.
const SCANNED_PREFIXES: [&str; 4] = [
    "crates/core/src/",
    "crates/obs/src/",
    "crates/cli/src/",
    "crates/sim/src/",
];

/// Mirror of `mdbs_obs::telemetry::SCHEDULING_METRIC_PREFIXES`: names under
/// these prefixes legitimately vary with the worker schedule and must carry
/// the `sched` flag.
const SCHED_PREFIXES: [&str; 1] = ["pool.sched."];

/// Telemetry constructors: method name → emitted kind. All but
/// `begin_span` take the name as the first of two-plus arguments; a
/// 1-arg `gauge(name)` / `counter(name)` is a *read* and is skipped.
const CONSTRUCTORS: [(&str, &str); 6] = [
    ("inc", "counter"),
    ("gauge", "gauge"),
    ("set_gauge", "gauge"),
    ("add_gauge", "gauge"),
    ("observe", "histogram"),
    ("record_event", "event"),
];

/// One parsed registry entry.
#[derive(Debug, Clone)]
pub struct RegistryEntry {
    /// 1-based line in the registry file.
    pub line: usize,
    /// The registered name, without a `.*` suffix for prefix entries.
    pub name: String,
    /// counter | gauge | histogram | span | event.
    pub kind: String,
    /// True when the entry is a `.*` prefix entry.
    pub is_prefix: bool,
    /// The `deterministic` / `sched` flag.
    pub determinism: String,
}

/// One telemetry emission site found in the sources.
#[derive(Debug, Clone)]
struct Emission {
    file: usize,
    line: usize,
    name: String,
    kind: &'static str,
}

/// Parses the registry file; malformed lines become findings.
pub fn parse_registry(text: &str) -> (Vec<RegistryEntry>, Vec<Finding>) {
    let mut entries = Vec::new();
    let mut findings = Vec::new();
    let mut bad = |line: usize, message: String| {
        findings.push(Finding {
            file: REGISTRY_PATH.to_string(),
            line,
            rule: UNREGISTERED_METRIC,
            message,
        });
    };
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let fields: Vec<&str> = content.split_whitespace().collect();
        if fields.len() != 4 {
            bad(
                line,
                format!(
                    "malformed registry line: expected `<name> <kind> <module> <determinism>`, got {} field(s)",
                    fields.len()
                ),
            );
            continue;
        }
        let (name, kind, module, determinism) = (fields[0], fields[1], fields[2], fields[3]);
        if !matches!(kind, "counter" | "gauge" | "histogram" | "span" | "event") {
            bad(line, format!("unknown telemetry kind `{kind}`"));
            continue;
        }
        if !matches!(determinism, "deterministic" | "sched") {
            bad(
                line,
                format!("determinism flag must be `deterministic` or `sched`, got `{determinism}`"),
            );
            continue;
        }
        if module.is_empty() || !module.contains('/') {
            bad(
                line,
                format!("owning module `{module}` should look like `crate/module`"),
            );
            continue;
        }
        let (name, is_prefix) = match name.strip_suffix(".*") {
            Some(p) => (p.to_string(), true),
            None => (name.to_string(), false),
        };
        let is_sched = SCHED_PREFIXES
            .iter()
            .any(|p| name.starts_with(p) || (is_prefix && p.starts_with(&format!("{name}."))));
        if is_sched != (determinism == "sched") {
            bad(
                line,
                format!(
                    "`{name}{}` is flagged `{determinism}` but names under {:?} {} scheduling-dependent",
                    if is_prefix { ".*" } else { "" },
                    SCHED_PREFIXES,
                    if is_sched { "are" } else { "are the only ones" }
                ),
            );
            continue;
        }
        entries.push(RegistryEntry {
            line,
            name,
            kind: kind.to_string(),
            is_prefix,
            determinism: determinism.to_string(),
        });
    }
    (entries, findings)
}

/// Extracts every literal-named telemetry emission (and flags
/// `format!`-built names) from one analyzed file.
fn extract_emissions(
    files: &[AnalyzedFile],
    fi: usize,
    emissions: &mut Vec<Emission>,
    findings: &mut Vec<Finding>,
) {
    let f = &files[fi];
    let strings: BTreeMap<usize, &str> = f
        .scanned
        .strings
        .iter()
        .map(|s| (s.token_index, s.value.as_str()))
        .collect();
    let tok = |i: usize| f.scanned.tokens.get(i).map(|t| t.text.as_str());
    for call in &f.graph.calls {
        if f.graph.in_test_code(call.token_index) {
            continue;
        }
        let open = call.token_index + 1; // the `(`
        if call.name == "record_request" {
            // Stamps the implicit event kind `request`; no string arg.
            emissions.push(Emission {
                file: fi,
                line: call.line,
                name: "request".into(),
                kind: "event",
            });
            continue;
        }
        let kind = if call.name == "begin_span" {
            Some("span")
        } else {
            CONSTRUCTORS
                .iter()
                .find(|(n, _)| *n == call.name)
                .map(|&(_, k)| k)
        };
        let Some(kind) = kind else { continue };
        match strings.get(&(open + 1)) {
            Some(name) => {
                // Emission constructors take `(name, value…)`; a bare
                // `(name)` is a read — except `begin_span`, whose single
                // argument *is* the emission.
                let emits = if call.name == "begin_span" {
                    tok(open + 1) == Some(")")
                } else {
                    tok(open + 1) == Some(",")
                };
                if emits {
                    emissions.push(Emission {
                        file: fi,
                        line: call.line,
                        name: name.to_string(),
                        kind,
                    });
                }
            }
            None => {
                // `format!`-built name: statically uncheckable.
                let dynamic = tok(open + 1) == Some("format")
                    || (tok(open + 1) == Some("&") && tok(open + 2) == Some("format"));
                if dynamic {
                    push_unless_waived(
                        &f.scanned,
                        findings,
                        &f.path,
                        call.line,
                        UNREGISTERED_METRIC,
                        format!(
                            "`{}` name is built with `format!` and cannot be checked against \
                             the registry; waive only when the produced names fall under a \
                             registered `.*` prefix entry",
                            call.name
                        ),
                    );
                }
            }
        }
    }
}

/// Runs the registry pass: `registry_text` is the content of
/// [`REGISTRY_PATH`], or `None` when the file is missing.
pub fn check_telemetry(files: &[AnalyzedFile], registry_text: Option<&str>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(text) = registry_text else {
        findings.push(Finding {
            file: REGISTRY_PATH.to_string(),
            line: 1,
            rule: UNREGISTERED_METRIC,
            message: "telemetry registry file is missing".into(),
        });
        return findings;
    };
    let (entries, mut parse_findings) = parse_registry(text);
    findings.append(&mut parse_findings);

    // Duplicate (name, kind) registrations.
    let mut seen: BTreeMap<(String, String, bool), usize> = BTreeMap::new();
    for e in &entries {
        let key = (e.name.clone(), e.kind.clone(), e.is_prefix);
        if let Some(first) = seen.get(&key) {
            findings.push(Finding {
                file: REGISTRY_PATH.to_string(),
                line: e.line,
                rule: UNREGISTERED_METRIC,
                message: format!(
                    "duplicate registration of {} `{}` (first registered on line {first})",
                    e.kind, e.name
                ),
            });
        } else {
            seen.insert(key, e.line);
        }
    }

    let mut emissions = Vec::new();
    for fi in 0..files.len() {
        if SCANNED_PREFIXES
            .iter()
            .any(|p| files[fi].path.starts_with(p))
        {
            extract_emissions(files, fi, &mut emissions, &mut findings);
        }
    }

    // Every emission must be registered with the matching kind.
    let mut matched = vec![false; entries.len()];
    for em in &emissions {
        let exact = entries
            .iter()
            .position(|e| !e.is_prefix && e.name == em.name && e.kind == em.kind);
        let hit = exact.or_else(|| {
            entries.iter().position(|e| {
                e.is_prefix && e.kind == em.kind && em.name.starts_with(&format!("{}.", e.name))
            })
        });
        match hit {
            Some(i) => matched[i] = true,
            None => {
                let other_kind = entries
                    .iter()
                    .find(|e| !e.is_prefix && e.name == em.name)
                    .map(|e| e.kind.clone());
                let message = match other_kind {
                    Some(k) => format!(
                        "telemetry {} `{}` is registered as a {k} — kind mismatch with {}",
                        em.kind, em.name, REGISTRY_PATH
                    ),
                    None => format!(
                        "telemetry {} `{}` is not registered in {}",
                        em.kind, em.name, REGISTRY_PATH
                    ),
                };
                push_unless_waived(
                    &files[em.file].scanned,
                    &mut findings,
                    &files[em.file].path,
                    em.line,
                    UNREGISTERED_METRIC,
                    message,
                );
            }
        }
    }

    // Every exact entry must still be emitted somewhere.
    for (i, e) in entries.iter().enumerate() {
        if !e.is_prefix && !matched[i] {
            findings.push(Finding {
                file: REGISTRY_PATH.to_string(),
                line: e.line,
                rule: UNREGISTERED_METRIC,
                message: format!(
                    "registered {} `{}` is no longer emitted anywhere in {:?}",
                    e.kind, e.name, SCANNED_PREFIXES
                ),
            });
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_source;

    fn run(src: &str, registry: Option<&str>) -> Vec<Finding> {
        let files = vec![analyze_source("crates/core/src/x.rs", src)];
        check_telemetry(&files, registry)
    }

    const SRC: &str = r#"
fn f(tel: &mut Telemetry) {
    tel.inc("serve.requests", 1);
    tel.observe("serve.latency_virtual_s", 0.5);
    let span = tel.begin_span("serve.loop");
    let _read = tel.gauge("serve.requests");
}
"#;

    #[test]
    fn registered_emissions_are_clean() {
        let reg = "serve.requests counter core/server deterministic\n\
                   serve.latency_virtual_s histogram core/server deterministic\n\
                   serve.loop span core/server deterministic\n";
        assert!(run(SRC, Some(reg)).is_empty());
    }

    #[test]
    fn unregistered_and_stale_names_are_findings() {
        let reg = "serve.requests counter core/server deterministic\n\
                   serve.loop span core/server deterministic\n\
                   serve.ghost counter core/server deterministic\n";
        let f = run(SRC, Some(reg));
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f
            .iter()
            .any(|x| x.message.contains("serve.latency_virtual_s")
                && x.message.contains("not registered")));
        assert!(f
            .iter()
            .any(|x| x.file == REGISTRY_PATH && x.message.contains("no longer emitted")));
    }

    #[test]
    fn kind_mismatch_duplicate_and_sched_flag_are_findings() {
        let reg = "serve.requests gauge core/server deterministic\n\
                   serve.latency_virtual_s histogram core/server deterministic\n\
                   serve.latency_virtual_s histogram core/server deterministic\n\
                   serve.loop span core/server sched\n";
        let f = run(SRC, Some(reg));
        assert!(
            f.iter().any(|x| x.message.contains("kind mismatch")),
            "{f:?}"
        );
        assert!(f
            .iter()
            .any(|x| x.message.contains("duplicate registration")));
        assert!(f.iter().any(|x| x.message.contains("flagged `sched`")));
    }

    #[test]
    fn format_built_names_need_a_waiver() {
        let src = r#"
fn f(tel: &mut Telemetry, base: &str) {
    tel.observe(&format!("{base}.abs_rel_err"), 1.0);
}
"#;
        let f = run(src, Some(""));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("format!"));
        let waived = r#"
fn f(tel: &mut Telemetry, base: &str) {
    // lint:allow(unregistered-metric): names fall under serve.ledger.*
    tel.observe(&format!("{base}.abs_rel_err"), 1.0);
}
"#;
        assert!(run(waived, Some("")).is_empty());
    }

    #[test]
    fn prefix_entries_cover_dotted_names_and_skip_still_emitted() {
        let src = r#"
fn f(tel: &mut Telemetry) {
    tel.set_gauge("serve.ledger.s1.idle.mean_rel_err", 0.1);
}
"#;
        let reg = "serve.ledger.* gauge obs/recorder deterministic\n";
        assert!(run(src, Some(reg)).is_empty());
    }

    #[test]
    fn missing_registry_file_is_a_finding() {
        let f = run(SRC, None);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("missing"));
    }

    #[test]
    fn test_code_and_non_scanned_crates_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(tel: &mut Telemetry) { tel.inc(\"junk\", 1); }\n}\n";
        assert!(run(src, Some("")).is_empty());
        let files = vec![analyze_source("crates/bench/src/h.rs", SRC)];
        assert!(check_telemetry(&files, Some("")).is_empty());
    }
}
