//! Fixture tests: every rule is exercised by a file that violates it
//! (asserting rule id *and* line), waivers demonstrably suppress, and the
//! meta-test runs the full lint over the real workspace and requires zero
//! findings — so the tree itself stays policy-clean and every sanctioned
//! exception carries a justification.
//!
//! The fixtures live under `tests/fixtures/`, which the workspace walker
//! skips, so the deliberately-violating files never pollute the real run.
//! `check_rust_source` takes the workspace-relative path as data, letting
//! each fixture be presented under whatever policy position its rule
//! needs (a restricted crate, a crate root, …).

use std::collections::BTreeSet;
use std::path::Path;

use mdbs_lint::{check_manifest_text, check_rust_source, render, Finding};

fn lines_for(findings: &[Finding], rule: &str) -> Vec<usize> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

fn assert_only(findings: &[Finding], rule: &str, lines: &[usize]) {
    assert!(
        findings.iter().all(|f| f.rule == rule),
        "expected only `{rule}` findings, got:\n{}",
        render(findings)
    );
    assert_eq!(
        lines_for(findings, rule),
        lines,
        "wrong lines for `{rule}`:\n{}",
        render(findings)
    );
}

#[test]
fn wall_clock_fixture_flags_the_instant_line() {
    let f = check_rust_source(
        "crates/core/src/wall_clock.rs",
        include_str!("fixtures/wall_clock.rs"),
    );
    assert_only(&f, mdbs_lint::NO_WALL_CLOCK, &[5]);
}

#[test]
fn ambient_entropy_fixture_flags_the_splitmix_constant() {
    let f = check_rust_source(
        "crates/sim/src/ambient_entropy.rs",
        include_str!("fixtures/ambient_entropy.rs"),
    );
    assert_only(&f, mdbs_lint::NO_AMBIENT_ENTROPY, &[5]);
}

#[test]
fn raw_threads_fixture_flags_the_spawn_line() {
    let f = check_rust_source(
        "crates/bench/src/raw_threads.rs",
        include_str!("fixtures/raw_threads.rs"),
    );
    assert_only(&f, mdbs_lint::NO_RAW_THREADS, &[5]);
}

#[test]
fn unordered_iteration_fixture_flags_the_iter_line() {
    let src = include_str!("fixtures/unordered_iteration.rs");
    let f = check_rust_source("crates/core/src/unordered_iteration.rs", src);
    assert_only(&f, mdbs_lint::NO_UNORDERED_ITERATION, &[8]);
    // The same source under an unrestricted crate is not the rule's business.
    assert!(check_rust_source("crates/obs/src/unordered_iteration.rs", src).is_empty());
}

#[test]
fn no_unsafe_fixture_flags_the_block_and_the_missing_forbid() {
    let f = check_rust_source(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/no_unsafe.rs"),
    );
    assert_only(&f, mdbs_lint::NO_UNSAFE, &[1, 5]);
}

#[test]
fn bad_waiver_fixture_flags_each_broken_waiver() {
    let f = check_rust_source(
        "crates/core/src/bad_waiver.rs",
        include_str!("fixtures/bad_waiver.rs"),
    );
    assert_only(&f, mdbs_lint::BAD_WAIVER, &[4, 7, 10]);
}

#[test]
fn waived_fixture_is_clean() {
    let f = check_rust_source(
        "crates/core/src/waived.rs",
        include_str!("fixtures/waived.rs"),
    );
    assert!(
        f.is_empty(),
        "justified waivers must suppress:\n{}",
        render(&f)
    );
}

#[test]
fn bad_manifest_fixture_flags_every_leak() {
    let allowed: BTreeSet<String> = ["mdbs-core", "mdbs-lint"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let f = check_manifest_text(
        "crates/fixture/Cargo.toml",
        include_str!("fixtures/bad_manifest.toml"),
        &allowed,
    );
    assert_only(&f, mdbs_lint::HERMETIC_MANIFESTS, &[6, 7, 9]);
}

/// The meta-test: the real tree must lint clean. Any new `Instant`, raw
/// thread, map iteration or external dependency shows up here (and in
/// ci.sh) until it is either fixed or waived with a justification.
#[test]
fn the_real_workspace_has_zero_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = mdbs_lint::check_workspace(&root).expect("workspace is readable");
    assert!(
        findings.is_empty(),
        "the workspace must lint clean (fix or waive with a justification):\n{}",
        render(&findings)
    );
}

/// Two full runs over the same tree must render byte-identically — the
/// property ci.sh asserts with `cmp` on the binary's output.
#[test]
fn workspace_lint_output_is_byte_stable() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let a = render(&mdbs_lint::check_workspace(&root).expect("first run"));
    let b = render(&mdbs_lint::check_workspace(&root).expect("second run"));
    assert_eq!(a, b);
}
