//! Fixture tests: every rule is exercised by a file that violates it
//! (asserting rule id *and* line), waivers demonstrably suppress, and the
//! meta-test runs the full lint over the real workspace and requires zero
//! findings — so the tree itself stays policy-clean and every sanctioned
//! exception carries a justification.
//!
//! The fixtures live under `tests/fixtures/`, which the workspace walker
//! skips, so the deliberately-violating files never pollute the real run.
//! `check_rust_source` takes the workspace-relative path as data, letting
//! each fixture be presented under whatever policy position its rule
//! needs (a restricted crate, a crate root, …).

use std::collections::BTreeSet;
use std::path::Path;

use mdbs_lint::{
    analyze_source, check_manifest_text, check_rust_source, render, render_json, Finding,
};

fn lines_for(findings: &[Finding], rule: &str) -> Vec<usize> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

fn assert_only(findings: &[Finding], rule: &str, lines: &[usize]) {
    assert!(
        findings.iter().all(|f| f.rule == rule),
        "expected only `{rule}` findings, got:\n{}",
        render(findings)
    );
    assert_eq!(
        lines_for(findings, rule),
        lines,
        "wrong lines for `{rule}`:\n{}",
        render(findings)
    );
}

#[test]
fn wall_clock_fixture_flags_the_instant_line() {
    let f = check_rust_source(
        "crates/core/src/wall_clock.rs",
        include_str!("fixtures/wall_clock.rs"),
    );
    assert_only(&f, mdbs_lint::NO_WALL_CLOCK, &[5]);
}

#[test]
fn ambient_entropy_fixture_flags_the_splitmix_constant() {
    let f = check_rust_source(
        "crates/sim/src/ambient_entropy.rs",
        include_str!("fixtures/ambient_entropy.rs"),
    );
    assert_only(&f, mdbs_lint::NO_AMBIENT_ENTROPY, &[5]);
}

#[test]
fn raw_threads_fixture_flags_the_spawn_line() {
    let f = check_rust_source(
        "crates/bench/src/raw_threads.rs",
        include_str!("fixtures/raw_threads.rs"),
    );
    assert_only(&f, mdbs_lint::NO_RAW_THREADS, &[5]);
}

#[test]
fn unordered_iteration_fixture_flags_the_iter_line() {
    let src = include_str!("fixtures/unordered_iteration.rs");
    let f = check_rust_source("crates/core/src/unordered_iteration.rs", src);
    assert_only(&f, mdbs_lint::NO_UNORDERED_ITERATION, &[8]);
    // The same source under an unrestricted crate is not the rule's business.
    assert!(check_rust_source("crates/obs/src/unordered_iteration.rs", src).is_empty());
}

#[test]
fn no_unsafe_fixture_flags_the_block_and_the_missing_forbid() {
    let f = check_rust_source(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/no_unsafe.rs"),
    );
    assert_only(&f, mdbs_lint::NO_UNSAFE, &[1, 5]);
}

#[test]
fn bad_waiver_fixture_flags_each_broken_waiver() {
    let f = check_rust_source(
        "crates/core/src/bad_waiver.rs",
        include_str!("fixtures/bad_waiver.rs"),
    );
    assert_only(&f, mdbs_lint::BAD_WAIVER, &[4, 7, 10]);
}

#[test]
fn waived_fixture_is_clean() {
    let f = check_rust_source(
        "crates/core/src/waived.rs",
        include_str!("fixtures/waived.rs"),
    );
    assert!(
        f.is_empty(),
        "justified waivers must suppress:\n{}",
        render(&f)
    );
}

#[test]
fn bad_manifest_fixture_flags_every_leak() {
    let allowed: BTreeSet<String> = ["mdbs-core", "mdbs-lint"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let f = check_manifest_text(
        "crates/fixture/Cargo.toml",
        include_str!("fixtures/bad_manifest.toml"),
        &allowed,
    );
    assert_only(&f, mdbs_lint::HERMETIC_MANIFESTS, &[6, 7, 9]);
}

#[test]
fn serial_only_escape_fixture_flags_direct_and_transitive_escapes() {
    let files = vec![analyze_source(
        "crates/core/src/serial_only_escape.rs",
        include_str!("fixtures/serial_only_escape.rs"),
    )];
    let mut f = mdbs_lint::context::check_context(&files);
    f.sort();
    assert_only(&f, mdbs_lint::SERIAL_ONLY_ESCAPE, &[14, 18]);
    assert!(
        f[0].message.contains("via worker-context fn(s) helper"),
        "{}",
        f[0].message
    );
    assert!(
        f[1].message
            .contains("directly inside a `run_jobs` closure"),
        "{}",
        f[1].message
    );
}

#[test]
fn unregistered_metric_fixture_flags_missing_and_mismatched_names() {
    let files = vec![analyze_source(
        "crates/core/src/unregistered_metric.rs",
        include_str!("fixtures/unregistered_metric.rs"),
    )];
    let reg = "fixture.registered counter core/unregistered_metric deterministic\n\
               fixture.kind_mismatch counter core/unregistered_metric deterministic\n";
    let mut f = mdbs_lint::telemetry_registry::check_telemetry(&files, Some(reg));
    f.sort();
    assert!(f.iter().all(|x| x.rule == mdbs_lint::UNREGISTERED_METRIC));
    let in_fixture: Vec<usize> = f
        .iter()
        .filter(|x| x.file.ends_with("unregistered_metric.rs"))
        .map(|x| x.line)
        .collect();
    assert_eq!(in_fixture, vec![6, 7], "{}", render(&f));
    assert!(
        f.iter().any(|x| {
            x.file == mdbs_lint::telemetry_registry::REGISTRY_PATH
                && x.line == 2
                && x.message.contains("no longer emitted")
        }),
        "the unmatched counter entry must trip the still-emitted check:\n{}",
        render(&f)
    );
}

#[test]
fn expired_deprecation_fixture_flags_expired_and_tagless_items() {
    let files = vec![analyze_source(
        "crates/core/src/expired_deprecation.rs",
        include_str!("fixtures/expired_deprecation.rs"),
    )];
    let mut f = mdbs_lint::deprecation::check_deprecations(&files, "0.1.0");
    f.sort();
    assert_only(&f, mdbs_lint::EXPIRED_DEPRECATION, &[4, 7]);
    assert!(f[0].message.contains("grace period is over"));
    assert!(f[1].message.contains("without a `since"));
}

/// Deleting one entry from the committed registry must fail the gate: the
/// name it covered becomes an unregistered emission (or, for a prefix
/// entry, un-waivers its `format!` sites via review — either way, loud).
#[test]
fn deleting_a_registry_line_breaks_the_telemetry_gate() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let registry_path = root.join(mdbs_lint::telemetry_registry::REGISTRY_PATH);
    let full = std::fs::read_to_string(&registry_path).expect("registry is committed");
    let victim = "serve.requests ";
    assert!(full.lines().any(|l| l.starts_with(victim)));
    let truncated: String = full
        .lines()
        .filter(|l| !l.starts_with(victim))
        .map(|l| format!("{l}\n"))
        .collect();

    let mut files = Vec::new();
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("readable") {
            let path = entry.expect("entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path
                    .strip_prefix(&root)
                    .expect("under root")
                    .to_string_lossy()
                    .replace('\\', "/");
                if mdbs_lint::is_workspace_pass_source(&rel) {
                    let src = std::fs::read_to_string(&path).expect("readable source");
                    files.push(analyze_source(&rel, &src));
                }
            }
        }
    }

    let clean = mdbs_lint::telemetry_registry::check_telemetry(&files, Some(&full));
    assert!(clean.is_empty(), "{}", render(&clean));
    let broken = mdbs_lint::telemetry_registry::check_telemetry(&files, Some(&truncated));
    assert!(
        broken
            .iter()
            .any(|f| f.message.contains("serve.requests") && f.message.contains("not registered")),
        "dropping the entry must surface its emission:\n{}",
        render(&broken)
    );
}

#[test]
fn json_rendering_is_schema_shaped_and_stable() {
    let findings = vec![Finding {
        file: "crates/core/src/x.rs".into(),
        line: 7,
        rule: mdbs_lint::NO_WALL_CLOCK,
        message: "wall-clock read".into(),
    }];
    let json = render_json(&findings);
    assert_eq!(
        json,
        "{\"title\":\"mdbs-lint\",\"finding_count\":1,\"findings\":[{\"file\":\"crates/core/src/x.rs\",\"line\":7,\"rule\":\"no-wall-clock\",\"message\":\"wall-clock read\"}]}\n"
    );
    assert_eq!(render_json(&findings), json, "byte-stable across calls");
    assert_eq!(
        render_json(&[]),
        "{\"title\":\"mdbs-lint\",\"finding_count\":0,\"findings\":[]}\n"
    );
}

/// The meta-test: the real tree must lint clean. Any new `Instant`, raw
/// thread, map iteration or external dependency shows up here (and in
/// ci.sh) until it is either fixed or waived with a justification.
#[test]
fn the_real_workspace_has_zero_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = mdbs_lint::check_workspace(&root).expect("workspace is readable");
    assert!(
        findings.is_empty(),
        "the workspace must lint clean (fix or waive with a justification):\n{}",
        render(&findings)
    );
}

/// Two full runs over the same tree must render byte-identically — the
/// property ci.sh asserts with `cmp` on the binary's output.
#[test]
fn workspace_lint_output_is_byte_stable() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let a = render(&mdbs_lint::check_workspace(&root).expect("first run"));
    let b = render(&mdbs_lint::check_workspace(&root).expect("second run"));
    assert_eq!(a, b);
}
