// Fixture: raw thread creation outside `mdbs_core::pool`.
// Expected: no-raw-threads at line 5.

pub fn fan_out() {
    let handle = std::thread::spawn(|| 42);
    let _ = handle.join();
}
