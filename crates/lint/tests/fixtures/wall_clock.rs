// Fixture: wall-clock read outside the sanctioned files.
// Expected: no-wall-clock at line 5.

pub fn elapsed_ms() -> u128 {
    let start = std::time::Instant::now();
    start.elapsed().as_millis()
}
