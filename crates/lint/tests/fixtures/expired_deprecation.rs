//! Fixture: one deprecation past its one-release grace period, one
//! missing its `since` tag, one still within grace.

#[deprecated(since = "0.0.1", note = "use `new_api` instead")]
pub fn expired() {}

#[deprecated]
pub fn missing_since() {}

#[deprecated(since = "0.1.0", note = "use `new_api` instead")]
pub fn within_grace() {}

pub fn new_api() {}
