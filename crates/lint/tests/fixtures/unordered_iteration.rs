// Fixture: map iteration with no ordering evidence, presented under a
// restricted (output-relevant) path. Expected: no-unordered-iteration at
// line 8.

use std::collections::HashMap;

pub fn emit_all(m: &HashMap<u32, u32>) {
    for (k, v) in m.iter() {
        drop((k, v));
    }
}
