// Fixture: an `unsafe` block in a crate root that also lacks
// `#![forbid(unsafe_code)]`. Expected: no-unsafe at lines 1 and 5.

pub fn peek(p: *const u32) -> u32 {
    unsafe { *p }
}
