//! Fixture: a `// ctx: serial-only` fn reached from a `pool::run_jobs`
//! worker closure, both directly and through an intermediate helper.

pub struct Ledger;

impl Ledger {
    // ctx: serial-only
    pub fn fold(&mut self, x: u64) {
        let _ = x;
    }
}

fn helper(l: &mut Ledger) {
    l.fold(7);
}

pub fn direct_escape(l: &mut Ledger) {
    pool::run_jobs(vec![1u64], 2, |_, j| l.fold(j));
}

pub fn transitive_escape(l: &mut Ledger) {
    pool::run_jobs(vec![1u64], 2, |_, _j| helper(l));
}

pub fn serial_caller_is_fine(l: &mut Ledger) {
    l.fold(1);
}
