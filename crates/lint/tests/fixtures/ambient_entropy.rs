// Fixture: a hand-rolled SplitMix64 step outside `mdbs_stats::rng`.
// Expected: no-ambient-entropy at line 5.

pub fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    *state ^ (*state >> 31)
}
