//! Fixture: telemetry emissions checked against a registry — one name
//! missing entirely, one registered under the wrong kind, one fine.

pub fn emit(telemetry: &mut Telemetry) {
    telemetry.inc("fixture.registered", 1);
    telemetry.inc("fixture.unregistered", 1);
    telemetry.gauge("fixture.kind_mismatch", 1.0);
}
