// Fixture: real violations, each carrying a well-formed justified waiver
// on its own line or the line above. Expected: clean.

pub fn timed() -> u128 {
    // lint:allow(no-wall-clock): fixture demonstrates a standalone waiver above the offending line
    let start = std::time::Instant::now();
    start.elapsed().as_millis()
}

pub fn threaded() {
    let h = std::thread::spawn(|| 1); // lint:allow(no-raw-threads): fixture demonstrates a trailing waiver
    let _ = h.join();
}
