// Fixture: broken waivers. Expected: bad-waiver at lines 4, 7 and 10
// (and nothing else — a broken waiver must not suppress anything).

// lint:allow(no-wall-clock)
fn missing_justification() {}

// lint:allow(no-such-rule): justified, but the rule does not exist
fn unknown_rule() {}

// lint:allow(bad-waiver): waiving the waiver rule itself
fn self_waiver() {}
