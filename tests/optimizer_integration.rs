//! End-to-end MDBS flow: derive models on two autonomous sites, populate
//! the global catalog, and verify the global optimizer's join-site decision
//! responds to contention the way the derived models say it should.

use mdbs_core::catalog::{GlobalCatalog, SiteId};
use mdbs_core::classes::QueryClass;
use mdbs_core::derive::{derive_cost_model, DerivationConfig};
use mdbs_core::optimizer::{GlobalJoin, GlobalOptimizer, JoinOperand};
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::states::StateAlgorithm;
use mdbs_sim::contention::Load;
use mdbs_sim::datagen::standard_database;
use mdbs_sim::{ContentionProfile, LoadBuilder, MdbsAgent, VendorProfile};

struct TwoSites {
    oracle: SiteId,
    db2: SiteId,
    oracle_agent: MdbsAgent,
    db2_agent: MdbsAgent,
    optimizer: GlobalOptimizer,
}

fn set_up() -> TwoSites {
    let oracle: SiteId = "oracle-site".into();
    let db2: SiteId = "db2-site".into();
    let mut oracle_agent = MdbsAgent::new(VendorProfile::oracle8(), standard_database(42), 3);
    let mut db2_agent = MdbsAgent::new(VendorProfile::db2v5(), standard_database(43), 4);
    let mut catalog = GlobalCatalog::new();
    let cfg = DerivationConfig {
        sample_size: Some(240),
        fit_probe_estimator: false,
        ..DerivationConfig::default()
    };
    for (site, agent, seed) in [
        (&oracle, &mut oracle_agent, 100u64),
        (&db2, &mut db2_agent, 200),
    ] {
        agent.set_load_builder(LoadBuilder::new(ContentionProfile::Uniform {
            lo: 20.0,
            hi: 125.0,
        }));
        for class in [QueryClass::UnaryNoIndex, QueryClass::JoinNoIndex] {
            let derived = derive_cost_model(
                agent,
                class,
                StateAlgorithm::Iupma,
                &cfg,
                &mut PipelineCtx::seeded(seed),
            )
            .expect("derivation succeeds");
            catalog.insert_model(site.clone(), class, derived.model);
        }
    }
    TwoSites {
        oracle,
        db2,
        oracle_agent,
        db2_agent,
        optimizer: GlobalOptimizer::new(catalog, 0.08),
    }
}

fn plan_under_load(
    s: &mut TwoSites,
    ora_procs: f64,
    db2_procs: f64,
) -> Vec<mdbs_core::optimizer::PlanEstimate> {
    s.oracle_agent.set_load(Load::background(ora_procs));
    s.db2_agent.set_load(Load::background(db2_procs));
    let ora_schema = s.oracle_agent.catalog().clone();
    let db2_schema = s.db2_agent.catalog().clone();
    let join = GlobalJoin {
        left: JoinOperand {
            site: s.oracle.clone(),
            table: ora_schema.tables()[6].id,
            join_col: 4,
            predicates: vec![],
        },
        right: JoinOperand {
            site: s.db2.clone(),
            table: db2_schema.tables()[6].id,
            join_col: 4,
            predicates: vec![],
        },
    };
    let probes = [
        (s.oracle.clone(), s.oracle_agent.probe()),
        (s.db2.clone(), s.db2_agent.probe()),
    ];
    s.optimizer
        .plan_join(
            &join,
            &[
                (s.oracle.clone(), &ora_schema),
                (s.db2.clone(), &db2_schema),
            ],
            &probes,
        )
        .expect("planning succeeds")
}

#[test]
fn optimizer_routes_away_from_the_contended_site() {
    let mut sites = set_up();

    // When the Oracle site thrashes, the join should run at the DB2 site,
    // and vice versa.
    let plans_ora_busy = plan_under_load(&mut sites, 122.0, 25.0);
    assert_eq!(plans_ora_busy.len(), 2);
    assert_eq!(
        plans_ora_busy[0].join_site, sites.db2,
        "join not routed away from the thrashing Oracle site"
    );

    let plans_db2_busy = plan_under_load(&mut sites, 25.0, 122.0);
    assert_eq!(
        plans_db2_busy[0].join_site, sites.oracle,
        "join not routed away from the thrashing DB2 site"
    );
}

#[test]
fn plan_totals_are_positive_and_ordered() {
    let mut sites = set_up();
    let plans = plan_under_load(&mut sites, 50.0, 50.0);
    assert_eq!(plans.len(), 2);
    for p in &plans {
        assert!(p.total().is_finite());
        assert!(p.transfer_mb > 0.0);
        assert!(p.transfer_cost > 0.0);
    }
    assert!(plans[0].total() <= plans[1].total());
}

#[test]
fn contended_plans_cost_more_than_quiet_ones() {
    let mut sites = set_up();
    let quiet = plan_under_load(&mut sites, 25.0, 25.0);
    let busy = plan_under_load(&mut sites, 120.0, 120.0);
    assert!(
        busy[0].total() > quiet[0].total(),
        "busy {} <= quiet {}",
        busy[0].total(),
        quiet[0].total()
    );
}
