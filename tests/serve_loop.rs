//! The long-lived estimation server (`mdbs_core::server`).
//!
//! The contract under test: a scripted request/observation trace replayed
//! through [`EstimationServer`] drives the full maintenance loop — requests
//! micro-batched onto the pool against registry snapshots, backpressure
//! shedding, at least one incremental refit and one drift-triggered
//! rederivation — and the report plus stripped telemetry are a pure
//! function of `(trace, seed, config)`, byte-identical at any worker
//! count. Readers racing maintenance republishes must observe monotone
//! snapshot versions.

use mdbs_core::catalog::{GlobalCatalog, SiteId};
use mdbs_core::classes::QueryClass;
use mdbs_core::derive::{derive_cost_model, DerivationConfig};
use mdbs_core::maintenance::{MaintenanceConfig, ModelMaintainer};
use mdbs_core::model::ModelAccumulator;
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::registry::ModelRegistry;
use mdbs_core::sampling::SampleGenerator;
use mdbs_core::server::{fleet_from_catalog, EstimationServer, RequestTrace, ServeConfig};
use mdbs_core::states::StateAlgorithm;
use mdbs_core::variables::VariableFamily;
use mdbs_core::Observation;
use mdbs_obs::telemetry::strip_wall_clock;
use mdbs_sim::datagen::standard_database;
use mdbs_sim::{ContentionProfile, LoadBuilder, MdbsAgent, VendorProfile};

fn oracle_agent(env_seed: u64) -> MdbsAgent {
    let mut agent = MdbsAgent::new(VendorProfile::oracle8(), standard_database(42), env_seed);
    agent.set_load_builder(LoadBuilder::new(ContentionProfile::Uniform {
        lo: 20.0,
        hi: 125.0,
    }));
    agent
}

/// A catalog with one maintained model (oracle / G1) plus its persisted
/// fit accumulator, exactly what `derive` writes for `serve --loop`.
fn seeded_catalog() -> GlobalCatalog {
    let mut agent = oracle_agent(40);
    let derived = derive_cost_model(
        &mut agent,
        QueryClass::UnaryNoIndex,
        StateAlgorithm::Iupma,
        &DerivationConfig::quick(),
        &mut PipelineCtx::seeded(41),
    )
    .expect("seed derivation succeeds");
    let mut catalog = GlobalCatalog::new();
    let site = SiteId::from("oracle");
    catalog.insert_model(
        site.clone(),
        QueryClass::UnaryNoIndex,
        derived.model.clone(),
    );
    catalog.insert_accumulator(
        site,
        QueryClass::UnaryNoIndex,
        ModelAccumulator::from_observations(&derived.model, &derived.observations),
    );
    catalog
}

const G1_SQLS: &[&str] = &[
    "select a1 from R2 where a2 < 100",
    "select a1, a5 from R8 where a5 > 100 and a6 < 500",
    "select a3 from R4 where a4 > 200",
    "select a1, a3 from R6 where a6 < 900",
    "select a5 from R10 where a7 > 50",
];

/// A trace exercising every serving-loop behaviour:
///
/// 1. a burst that overflows the bounded queue (queue-full sheds) and then
///    out-waits the deadline (deadline sheds);
/// 2. steady good traffic: 20 observations that reach the refit threshold
///    → one incremental refit, with requests answered throughout;
/// 3. a durable 12× I/O degradation followed by bad traffic that trips the
///    drift monitor → one pooled rederivation — and a final request that
///    must still be answered afterwards. 12× is strong enough to push
///    observed costs out of the good-estimate band yet mild enough that
///    the startup-dominated probing query does not shift the contention
///    state and mask the drift.
fn scripted_trace() -> String {
    let mut t = String::from("# serve-loop determinism trace\n");
    // Phase 1: burst of 10 requests at t=0 against queue_capacity=4,
    // batch_max=2, service=0.2s, deadline=0.5s.
    for i in 0..10 {
        t.push_str(&format!(
            "@0.0 request oracle {}\n",
            G1_SQLS[i % G1_SQLS.len()]
        ));
    }
    // Phase 2: good traffic toward the refit threshold (20 pending).
    let mut at = 5.0;
    for i in 0..20 {
        t.push_str(&format!(
            "@{at:.1} observe oracle {}\n",
            G1_SQLS[i % G1_SQLS.len()]
        ));
        at += 1.0;
        if i % 5 == 4 {
            t.push_str(&format!(
                "@{at:.1} request oracle {}\n",
                G1_SQLS[(i + 2) % G1_SQLS.len()]
            ));
            at += 1.0;
        }
    }
    // Phase 3: durable degradation, then traffic that trips the monitor.
    t.push_str(&format!("@{at:.1} degrade oracle 12.0\n"));
    at += 1.0;
    for i in 0..16 {
        t.push_str(&format!(
            "@{at:.1} observe oracle {}\n",
            G1_SQLS[i % G1_SQLS.len()]
        ));
        at += 1.0;
        if i % 6 == 5 {
            t.push_str(&format!(
                "@{at:.1} request oracle {}\n",
                G1_SQLS[(i + 1) % G1_SQLS.len()]
            ));
            at += 1.0;
        }
    }
    // Requests must still be answered after the rederivation.
    t.push_str(&format!("@{:.1} request oracle {}\n", at + 5.0, G1_SQLS[0]));
    t
}

fn loop_config(workers: usize) -> ServeConfig {
    ServeConfig::builder()
        .queue_capacity(4)
        .batch_max(2)
        .batch_delay_s(0.05)
        .service_cost_s(0.2)
        .deadline_s(0.5)
        .refit_threshold(20)
        .workers(Some(workers))
        // Observability has its own suite (`tests/observability.rs`); this
        // one pins the plain serving contract.
        .heartbeat_s(0.0)
        .flight_capacity(0)
        .build()
        .expect("sane config")
}

fn maintenance_config() -> MaintenanceConfig {
    MaintenanceConfig::builder()
        .window(20)
        .min_observations(8)
        .min_good_fraction(0.55)
        .build()
        .expect("sane config")
}

fn run_loop(
    catalog: &GlobalCatalog,
    trace: &RequestTrace,
    workers: usize,
) -> (String, String, mdbs_core::server::ServeReport) {
    let registry = ModelRegistry::from_catalog(catalog);
    let fleet = fleet_from_catalog(
        catalog,
        maintenance_config(),
        DerivationConfig::quick(),
        StateAlgorithm::Iupma,
        |site| site.0 == "oracle",
    )
    .expect("fleet builds from the catalog");
    let mut server = EstimationServer::new(registry, fleet, loop_config(workers));
    let mut ctx = PipelineCtx::traced(9);
    let report = server.run(
        trace,
        |site: &SiteId, seed: u64| (site.0 == "oracle").then(|| oracle_agent(seed)),
        &mut ctx,
    );
    let stripped = strip_wall_clock(&ctx.telemetry.render_jsonl());
    (report.rendered.clone(), stripped, report)
}

#[test]
fn serve_loop_drives_refit_and_rederivation_deterministically() {
    let catalog = seeded_catalog();
    let trace = RequestTrace::parse(&scripted_trace());
    assert!(
        trace.errors.is_empty(),
        "trace must be clean: {:?}",
        trace.errors
    );

    let (serial_out, serial_tel, report) = run_loop(&catalog, &trace, 1);

    // The loop went through both maintenance paths while serving.
    assert!(
        report.incremental_refits >= 1,
        "no incremental refit ran:\n{serial_out}"
    );
    assert!(
        report.rederivations >= 1,
        "no drift-triggered rederivation ran:\n{serial_out}"
    );
    assert!(report.answered >= 10, "requests starved:\n{serial_out}");
    // The final request (after the rederivation) was answered.
    let final_lineno = trace.events.last().expect("non-empty trace").lineno;
    let final_row = serial_out
        .lines()
        .find(|l| l.trim_start().starts_with(&format!("{final_lineno} @")))
        .unwrap_or_else(|| panic!("no row for the final request:\n{serial_out}"));
    assert!(
        final_row.contains("estimate"),
        "request after rederivation was not answered: {final_row}"
    );

    // Backpressure engaged: the burst overflowed the queue and then
    // out-waited the deadline.
    assert!(
        report.shed_queue_full > 0,
        "no queue-full shed:\n{serial_out}"
    );
    assert!(report.shed_deadline > 0, "no deadline shed:\n{serial_out}");
    assert_eq!(
        report.max_queue_depth, 4,
        "queue never filled:\n{serial_out}"
    );
    assert!(report.latency_p95_s >= report.latency_p50_s);
    assert!(report.virtual_makespan_s > 0.0);

    // Queue-depth and shed counters are first-class telemetry, and the
    // scheduling-dependent metrics were confined to the stripped prefix.
    for metric in [
        "serve.queue_depth",
        "serve.shed.queue_full",
        "serve.shed.deadline",
        "serve.latency_virtual_s",
        "serve.batch_size",
        "maintenance.incremental_refits",
        "maintenance.rederivations",
    ] {
        assert!(
            serial_tel.contains(metric),
            "missing {metric}:\n{serial_tel}"
        );
    }
    assert!(!serial_tel.contains("pool.sched."), "{serial_tel}");

    // Byte-identical replay at any worker count: report and telemetry.
    for workers in [2, 8] {
        let (out, tel, _) = run_loop(&catalog, &trace, workers);
        assert_eq!(
            serial_out, out,
            "serve-loop report must not depend on worker count ({workers})"
        );
        assert_eq!(
            serial_tel, tel,
            "stripped serve-loop telemetry must not depend on worker count ({workers})"
        );
    }
}

#[test]
fn one_bad_trace_line_does_not_drop_the_replay() {
    let catalog = seeded_catalog();
    let trace = RequestTrace::parse(
        "@0.0 request oracle select a1 from R2 where a2 < 100\n\
         @0.1 frobnicate oracle nonsense\n\
         @0.2 request oracle select syntactically broken\n\
         @0.3 request teradata select a1 from R2 where a2 < 100\n\
         @0.4 request oracle select a3 from R4 where a4 > 200\n",
    );
    assert_eq!(
        trace.errors.len(),
        1,
        "only the unknown kind fails at parse"
    );
    let (out, _, report) = run_loop(&catalog, &trace, 2);
    assert_eq!(report.answered, 2, "good lines kept being served:\n{out}");
    assert_eq!(
        report.errors, 3,
        "parse error + bad SQL + unknown site, all inline:\n{out}"
    );
    assert!(out.contains("ERROR"), "{out}");
    assert!(out.contains("unknown site"), "{out}");
}

/// Satellite: readers estimating concurrently with maintenance publishing
/// incremental-refit snapshots never see a torn or version-regressing
/// read — the versions each reader observes are monotone.
#[test]
fn estimation_versions_are_monotone_under_incremental_refit_republish() {
    let mut agent = oracle_agent(80);
    let derived = derive_cost_model(
        &mut agent,
        QueryClass::UnaryNoIndex,
        StateAlgorithm::Iupma,
        &DerivationConfig::quick(),
        &mut PipelineCtx::seeded(81),
    )
    .expect("derivation succeeds");
    let site = SiteId::from("oracle");
    let mut maintainer = ModelMaintainer::new(
        derived,
        MaintenanceConfig::default(),
        DerivationConfig::quick(),
        StateAlgorithm::Iupma,
    );
    let registry = ModelRegistry::new();
    registry.publish(
        site.clone(),
        QueryClass::UnaryNoIndex,
        maintainer.derived.model.clone(),
    );

    // Pre-generate the refit batches serially (the agent is not shared).
    let family = VariableFamily::Unary;
    let mut generator = SampleGenerator::new(82);
    let batches: Vec<Vec<Observation>> = (0..20)
        .map(|_| {
            let mut batch = Vec::with_capacity(10);
            while batch.len() < 10 {
                let q = generator.generate(QueryClass::UnaryNoIndex, agent.catalog());
                let Some(x) = family.extract(agent.catalog(), &q) else {
                    continue;
                };
                agent.tick();
                let probe = agent.probe();
                let cost = agent.run(&q).expect("query runs").cost_s;
                batch.push(Observation {
                    x,
                    cost,
                    probe_cost: probe,
                });
            }
            batch
        })
        .collect();
    let schema = agent.catalog().clone();
    let query = SampleGenerator::new(83).generate(QueryClass::UnaryNoIndex, &schema);

    #[allow(clippy::disallowed_methods)]
    // lint:allow(no-raw-threads): reader/republish race stress test needs raw racing threads; nothing output-relevant is computed
    std::thread::scope(|scope| {
        let registry = &registry;
        let (site, schema, query) = (&site, &schema, &query);
        scope.spawn(move || {
            let mut ctx = PipelineCtx::seeded(84);
            for batch in &batches {
                maintainer
                    .refit_incremental(site, batch, Some(registry), &mut ctx)
                    .expect("incremental refit publishes");
            }
        });
        for _ in 0..3 {
            scope.spawn(move || {
                let mut last_version = 0u64;
                for _ in 0..400 {
                    let detail = registry
                        .estimate(&mdbs_core::correction::EstimateQuery::raw(
                            site, schema, query, 1.0,
                        ))
                        .expect("model never absent while republishing");
                    let (estimate, version) = (detail.estimate, detail.version);
                    assert!(estimate.is_finite(), "torn read produced {estimate}");
                    assert!(
                        version >= last_version,
                        "snapshot version regressed: {version} < {last_version}"
                    );
                    last_version = version;
                }
            });
        }
    });
    // Every refit published exactly one new snapshot on top of the seed.
    assert_eq!(registry.version(), 21);
    assert_eq!(registry.len(), 1);
}
