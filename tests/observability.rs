//! The serving-loop flight recorder, accuracy ledger and heartbeats
//! (`mdbs_core::server` + `mdbs_obs::recorder`).
//!
//! The contract under test: with observability enabled the serving loop
//! stays a pure function of `(trace, seed, config)` — the flight-recorder
//! dump, the heartbeat stream and the accuracy ledger are byte-identical
//! at any worker count — and every request admitted to the loop can be
//! reconstructed from its flight record via a unique, seed-stable trace id.

use std::collections::BTreeSet;

use mdbs_core::catalog::{GlobalCatalog, SiteId};
use mdbs_core::classes::QueryClass;
use mdbs_core::derive::{derive_cost_model, DerivationConfig};
use mdbs_core::maintenance::MaintenanceConfig;
use mdbs_core::model::ModelAccumulator;
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::registry::ModelRegistry;
use mdbs_core::server::{fleet_from_catalog, EstimationServer, RequestTrace, ServeConfig};
use mdbs_core::states::StateAlgorithm;
use mdbs_obs::json::Json;
use mdbs_sim::datagen::standard_database;
use mdbs_sim::{ContentionProfile, LoadBuilder, MdbsAgent, VendorProfile};

fn oracle_agent(env_seed: u64) -> MdbsAgent {
    let mut agent = MdbsAgent::new(VendorProfile::oracle8(), standard_database(42), env_seed);
    agent.set_load_builder(LoadBuilder::new(ContentionProfile::Uniform {
        lo: 20.0,
        hi: 125.0,
    }));
    agent
}

fn seeded_catalog() -> GlobalCatalog {
    let mut agent = oracle_agent(40);
    let derived = derive_cost_model(
        &mut agent,
        QueryClass::UnaryNoIndex,
        StateAlgorithm::Iupma,
        &DerivationConfig::quick(),
        &mut PipelineCtx::seeded(41),
    )
    .expect("seed derivation succeeds");
    let mut catalog = GlobalCatalog::new();
    let site = SiteId::from("oracle");
    catalog.insert_model(
        site.clone(),
        QueryClass::UnaryNoIndex,
        derived.model.clone(),
    );
    catalog.insert_accumulator(
        site,
        QueryClass::UnaryNoIndex,
        ModelAccumulator::from_observations(&derived.model, &derived.observations),
    );
    catalog
}

const G1_SQLS: &[&str] = &[
    "select a1 from R2 where a2 < 100",
    "select a1, a5 from R8 where a5 > 100 and a6 < 500",
    "select a3 from R4 where a4 > 200",
    "select a1, a3 from R6 where a6 < 900",
    "select a5 from R10 where a7 > 50",
];

/// Request burst (sheds) + interleaved request/observe traffic spanning
/// ~40s of virtual time, enough for several heartbeats and a populated
/// per-state ledger.
fn scripted_trace() -> String {
    let mut t = String::from("# observability trace\n");
    for i in 0..8 {
        t.push_str(&format!(
            "@0.0 request oracle {}\n",
            G1_SQLS[i % G1_SQLS.len()]
        ));
    }
    let mut at = 4.0;
    for i in 0..18 {
        t.push_str(&format!(
            "@{at:.1} observe oracle {}\n",
            G1_SQLS[i % G1_SQLS.len()]
        ));
        at += 1.0;
        if i % 3 == 2 {
            t.push_str(&format!(
                "@{at:.1} request oracle {}\n",
                G1_SQLS[(i + 1) % G1_SQLS.len()]
            ));
            at += 1.0;
        }
    }
    t.push_str(&format!("@{:.1} request oracle {}\n", at + 5.0, G1_SQLS[0]));
    t
}

fn obs_config(workers: usize) -> ServeConfig {
    ServeConfig::builder()
        .queue_capacity(4)
        .batch_max(2)
        .batch_delay_s(0.05)
        .service_cost_s(0.2)
        .deadline_s(0.5)
        .refit_threshold(20)
        .workers(Some(workers))
        .heartbeat_s(10.0)
        .flight_capacity(64)
        .build()
        .expect("sane config")
}

struct LoopRun {
    rendered: String,
    telemetry: String,
    flight: String,
    report: mdbs_core::server::ServeReport,
}

fn run_loop(catalog: &GlobalCatalog, trace: &RequestTrace, workers: usize) -> LoopRun {
    let registry = ModelRegistry::from_catalog(catalog);
    let fleet = fleet_from_catalog(
        catalog,
        MaintenanceConfig::default(),
        DerivationConfig::quick(),
        StateAlgorithm::Iupma,
        |site| site.0 == "oracle",
    )
    .expect("fleet builds from the catalog");
    let mut server = EstimationServer::new(registry, fleet, obs_config(workers));
    let mut ctx = PipelineCtx::traced(9);
    let report = server.run(
        trace,
        |site: &SiteId, seed: u64| (site.0 == "oracle").then(|| oracle_agent(seed)),
        &mut ctx,
    );
    LoopRun {
        rendered: report.rendered.clone(),
        telemetry: mdbs_obs::telemetry::strip_wall_clock(&ctx.telemetry.render_jsonl()),
        flight: server.recorder().dump_jsonl(),
        report,
    }
}

/// Every flight record parses through the workspace's own JSON reader and
/// carries the type tag; request records carry a trace id.
fn trace_ids(flight_jsonl: &str) -> Vec<String> {
    let mut ids = Vec::new();
    for line in flight_jsonl.lines() {
        let record = mdbs_obs::json::parse(line)
            .unwrap_or_else(|e| panic!("unparseable flight record `{line}`: {e:?}"));
        assert_eq!(
            record.get("type").and_then(Json::as_str),
            Some("flight"),
            "{line}"
        );
        if record.get("kind").and_then(Json::as_str) == Some("request") {
            let id = record
                .get("trace_id")
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("request record without trace_id: {line}"));
            ids.push(id.to_string());
        }
    }
    ids
}

#[test]
fn flight_recorder_and_heartbeats_are_worker_independent() {
    let catalog = seeded_catalog();
    let trace = RequestTrace::parse(&scripted_trace());
    assert!(trace.errors.is_empty(), "{:?}", trace.errors);

    let serial = run_loop(&catalog, &trace, 1);

    // The loop heartbeat-ed at least twice over ~40s of virtual time at
    // Δt = 10s, and each beat landed in all three streams.
    assert!(
        serial.report.heartbeats >= 2,
        "expected >=2 heartbeats:\n{}",
        serial.rendered
    );
    let span_beats = serial
        .telemetry
        .lines()
        .filter(|l| l.contains("\"name\":\"serve.heartbeat\""))
        .count();
    assert_eq!(span_beats, serial.report.heartbeats, "{}", serial.telemetry);
    let flight_beats = serial
        .flight
        .lines()
        .filter(|l| l.contains("\"kind\":\"heartbeat\""))
        .count();
    assert_eq!(flight_beats, serial.report.heartbeats, "{}", serial.flight);

    // Trace ids: one per recorded request lifecycle, all distinct.
    let ids = trace_ids(&serial.flight);
    assert!(!ids.is_empty(), "no request lifecycles recorded");
    let unique: BTreeSet<_> = ids.iter().collect();
    assert_eq!(unique.len(), ids.len(), "duplicate trace ids: {ids:?}");

    // Byte-identical at any worker count: report, stripped telemetry and
    // the flight-recorder dump (flight records carry no wall-clock).
    for workers in [2, 8] {
        let run = run_loop(&catalog, &trace, workers);
        assert_eq!(serial.rendered, run.rendered, "report ({workers} workers)");
        assert_eq!(
            serial.telemetry, run.telemetry,
            "stripped telemetry ({workers} workers)"
        );
        assert_eq!(serial.flight, run.flight, "flight dump ({workers} workers)");
        assert_eq!(trace_ids(&run.flight), ids, "trace ids ({workers} workers)");
    }
}

#[test]
fn ledger_reaches_report_rendering_and_json() {
    let catalog = seeded_catalog();
    let trace = RequestTrace::parse(&scripted_trace());
    let run = run_loop(&catalog, &trace, 2);

    // Every observation of a query the registry could price feeds the
    // ledger, keyed by the state detected at estimation time.
    assert!(!run.report.ledger.is_empty(), "{}", run.rendered);
    let total: u64 = run.report.ledger.iter().map(|row| row.count).sum();
    assert_eq!(
        total as usize, run.report.observations,
        "every priced observation lands in exactly one ledger cell"
    );
    for row in &run.report.ledger {
        assert_eq!(row.site, "oracle");
        assert!(row.state.starts_with('S'), "paper label: {}", row.state);
        assert!(row.p95_abs_rel >= row.p50_abs_rel);
        assert!(['+', '-', '='].contains(&row.bias));
    }
    assert!(run.rendered.contains("accuracy ledger"), "{}", run.rendered);

    // Machine-readable report: renders, re-parses, and carries the same
    // ledger cells the human report shows.
    let json = run.report.to_json().render();
    let parsed = mdbs_obs::json::parse(&json).expect("report json round-trips");
    let Some(Json::Arr(rows)) = parsed.get("ledger") else {
        panic!("report json misses the ledger: {json}");
    };
    assert_eq!(rows.len(), run.report.ledger.len());
    assert_eq!(
        parsed.get("heartbeats").and_then(Json::as_i64),
        Some(run.report.heartbeats as i64)
    );
    assert_eq!(
        parsed.get("shed_fraction").and_then(Json::as_f64),
        Some(run.report.shed_fraction())
    );

    // The rendered shed line reports the percentage, not just raw counts.
    assert!(run.rendered.contains("% of requests"), "{}", run.rendered);
}

/// Ledger arithmetic end-to-end on a minimal trace: three observations of
/// the same query class must fold into ledger cells whose counts sum to 3
/// and whose mean signed error matches the per-cell residuals re-derived
/// from the flight of the report itself.
#[test]
fn ledger_counts_match_a_three_observation_trace() {
    let catalog = seeded_catalog();
    let trace = RequestTrace::parse(
        "@0.0 observe oracle select a1 from R2 where a2 < 100\n\
         @1.0 observe oracle select a3 from R4 where a4 > 200\n\
         @2.0 observe oracle select a5 from R10 where a7 > 50\n",
    );
    assert!(trace.errors.is_empty(), "{:?}", trace.errors);
    let run = run_loop(&catalog, &trace, 1);
    assert_eq!(run.report.observations, 3);
    let total: u64 = run.report.ledger.iter().map(|row| row.count).sum();
    assert_eq!(total, 3, "{}", run.rendered);
    for row in &run.report.ledger {
        assert!(row.mean_abs_rel >= 0.0);
        assert!(row.mean_rel.abs() <= row.mean_abs_rel + 1e-12);
    }
}
