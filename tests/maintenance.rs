//! Model maintenance under occasionally-changing factors (paper §2):
//! durable hardware changes degrade a derived model, drift is detected from
//! production traffic, re-derivation restores quality — while mere data
//! growth, which the explanatory variables absorb, raises no alarm.

use mdbs_core::classes::QueryClass;
use mdbs_core::derive::{derive_cost_model, DerivationConfig};
use mdbs_core::maintenance::{MaintenanceConfig, ModelMaintainer};
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::sampling::SampleGenerator;
use mdbs_core::states::StateAlgorithm;
use mdbs_core::variables::VariableFamily;
use mdbs_core::{GlobalCatalog, ModelRegistry, Observation};
use mdbs_sim::datagen::standard_database;
use mdbs_sim::{ContentionProfile, EnvironmentEvent, LoadBuilder, MdbsAgent, VendorProfile};

fn dynamic_agent(env_seed: u64) -> MdbsAgent {
    let mut agent = MdbsAgent::new(VendorProfile::oracle8(), standard_database(42), env_seed);
    agent.set_load_builder(LoadBuilder::new(ContentionProfile::Uniform {
        lo: 20.0,
        hi: 125.0,
    }));
    agent
}

fn maintainer(agent: &mut MdbsAgent) -> ModelMaintainer {
    let cfg = DerivationConfig {
        sample_size: Some(240),
        fit_probe_estimator: false,
        ..DerivationConfig::default()
    };
    let derived = derive_cost_model(
        agent,
        QueryClass::UnaryNoIndex,
        StateAlgorithm::Iupma,
        &cfg,
        &mut PipelineCtx::seeded(5),
    )
    .expect("initial derivation succeeds");
    ModelMaintainer::new(
        derived,
        MaintenanceConfig::builder()
            .window(40)
            .min_observations(25)
            // Baseline traffic sits near 0.75-0.85 good (the sorted
            // queries in the workload are the hardest to price); durable
            // changes in the scenarios below push it to ~0.5.
            .min_good_fraction(0.55)
            .build()
            .expect("sane config"),
        cfg,
        StateAlgorithm::Iupma,
    )
}

/// Routes `n` production queries through the model, feeding the monitor;
/// returns whether drift was ever reported.
fn run_traffic(m: &mut ModelMaintainer, agent: &mut MdbsAgent, n: usize, seed: u64) -> bool {
    let mut generator = SampleGenerator::new(seed);
    let family = VariableFamily::Unary;
    let mut drifted = false;
    for _ in 0..n {
        let q = generator.generate(QueryClass::UnaryNoIndex, agent.catalog());
        let Some(x) = family.extract(agent.catalog(), &q) else {
            continue;
        };
        agent.tick();
        let probe = agent.probe();
        let x_sel: Vec<f64> = m.derived.model.var_indexes.iter().map(|&i| x[i]).collect();
        let est = m.derived.model.estimate(&x_sel, probe);
        let obs = agent.run(&q).expect("query runs").cost_s;
        drifted |= m.observe(obs, est, &mut PipelineCtx::default());
    }
    drifted
}

#[test]
fn stable_site_raises_no_alarm() {
    let mut agent = dynamic_agent(61);
    let mut m = maintainer(&mut agent);
    let drifted = run_traffic(&mut m, &mut agent, 60, 62);
    assert!(!drifted, "false alarm on an unchanged site");
    assert!(m.monitor.good_fraction() > 0.6);
}

/// A notable property of the probing approach: a memory upgrade that
/// reshapes the contention response affects the probing query and the
/// workload *alike*, so the probe keeps indexing into behaviourally
/// equivalent states and the old model keeps estimating well — no false
/// maintenance.
#[test]
fn memory_upgrade_is_absorbed_by_the_probe() {
    let mut agent = dynamic_agent(63);
    let mut m = maintainer(&mut agent);
    agent
        .apply_event(&EnvironmentEvent::MemoryUpgrade {
            new_phys_mem_mb: 4096.0,
        })
        .expect("valid event");
    let drifted = run_traffic(&mut m, &mut agent, 80, 64);
    assert!(
        !drifted,
        "probe-relative model should absorb the upgrade (good fraction {})",
        m.monitor.good_fraction()
    );
    assert!(m.monitor.good_fraction() > 0.6);
}

/// Changes the probe largely *cannot* see — here, storage degrading to
/// 8x slower page I/O while the probe stays startup/CPU-dominated — do
/// degrade the model; drift is detected from production traffic and
/// re-derivation restores quality.
#[test]
fn storage_degradation_drifts_and_rederivation_recovers() {
    let mut agent = dynamic_agent(63);
    let mut m = maintainer(&mut agent);
    agent
        .apply_event(&EnvironmentEvent::DiskReplacement {
            io_cost_factor: 8.0,
        })
        .expect("valid event");
    let drifted = run_traffic(&mut m, &mut agent, 80, 64);
    assert!(drifted, "8x slower storage went undetected");
    let degraded = m.monitor.good_fraction();
    assert!(degraded < 0.65, "good fraction still {degraded}");

    // Re-derive against the changed site and verify production quality.
    // (Judged on the *final* monitor state: the first few windowed
    // observations can dip transiently without meaning anything.)
    m.rederive(&mut agent, &mut PipelineCtx::seeded(65))
        .expect("re-derivation succeeds");
    assert_eq!(m.rederivations, 1);
    run_traffic(&mut m, &mut agent, 60, 66);
    assert!(!m.monitor.drifted(), "re-derived model still drifting");
    assert!(
        m.monitor.good_fraction() > degraded,
        "quality did not recover: {} vs {}",
        m.monitor.good_fraction(),
        degraded
    );
}

#[test]
fn data_growth_alone_does_not_drift() {
    let mut agent = dynamic_agent(67);
    let mut m = maintainer(&mut agent);

    // Every table doubles. The explanatory variables (operand/intermediate/
    // result sizes) are re-extracted from the catalog per query, so the
    // model keeps estimating well — no maintenance needed (paper §2 counts
    // accumulated data change as occasionally-changing, but the regression
    // *form* is unchanged; only the inputs moved).
    let ids: Vec<_> = agent.catalog().tables().iter().map(|t| t.id).collect();
    for id in ids {
        agent
            .apply_event(&EnvironmentEvent::TableGrowth {
                table: id,
                factor: 2.0,
            })
            .expect("valid event");
    }
    let drifted = run_traffic(&mut m, &mut agent, 60, 68);
    assert!(
        !drifted,
        "pure data growth triggered maintenance (good fraction {})",
        m.monitor.good_fraction()
    );
}

/// Gathers `n` fresh production observations (full Table-3 variable vector,
/// probing cost and observed cost) ready to be absorbed by a refit.
fn fresh_observations(agent: &mut MdbsAgent, n: usize, seed: u64) -> Vec<Observation> {
    let mut generator = SampleGenerator::new(seed);
    let family = VariableFamily::Unary;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let q = generator.generate(QueryClass::UnaryNoIndex, agent.catalog());
        let Some(x) = family.extract(agent.catalog(), &q) else {
            continue;
        };
        agent.tick();
        let probe = agent.probe();
        let cost = agent.run(&q).expect("query runs").cost_s;
        out.push(Observation {
            x,
            cost,
            probe_cost: probe,
        });
    }
    out
}

/// The cheap maintenance path: fold fresh observations into the stored
/// sufficient statistics, re-solve in O(k³), publish a new registry
/// snapshot — no re-sampling, no state re-determination.
#[test]
fn incremental_refit_absorbs_traffic_and_publishes() {
    let mut agent = dynamic_agent(71);
    let mut m = maintainer(&mut agent);
    let before = m.derived.model.clone();
    let n_before = m.accumulator().n();
    assert_eq!(n_before, m.derived.observations.len());

    // Seed the registry with the production model and note its version.
    let registry = ModelRegistry::new();
    let site = mdbs_core::catalog::SiteId::from("site-1");
    let v0 = registry.publish(site.clone(), m.class(), before.clone());

    // Dirty the drift window, then refit incrementally.
    for _ in 0..30 {
        m.observe(10.0, 100.0, &mut PipelineCtx::default());
    }
    let fresh = fresh_observations(&mut agent, 40, 72);
    m.refit_incremental(&site, &fresh, Some(&registry), &mut PipelineCtx::default())
        .expect("incremental refit succeeds");

    assert_eq!(m.incremental_refits, 1);
    assert_eq!(m.rederivations, 0, "no full re-derivation ran");
    assert_eq!(m.accumulator().n(), n_before + fresh.len());
    assert_eq!(m.derived.observations.len(), n_before + fresh.len());
    assert_eq!(m.monitor.observations(), 0, "drift window cleared");
    // Shape is preserved; only the coefficients/fit were re-solved.
    assert_eq!(m.derived.model.form, before.form);
    assert_eq!(m.derived.model.states, before.states);
    assert_eq!(m.derived.model.var_indexes, before.var_indexes);
    assert_eq!(m.derived.model.fit.n, n_before + fresh.len());
    // A new snapshot version was published for concurrent estimators.
    let snap = registry.get(&site, m.class()).expect("model registered");
    assert!(snap.version > v0, "publish did not bump the version");
    assert_eq!(snap.model, m.derived.model);
}

/// The accumulator survives the catalog text format: persist `gram-entry`
/// blocks, restore into a fresh maintainer, and continue incremental
/// refits from the exact same statistics.
#[test]
fn incremental_refit_resumes_from_persisted_accumulator() {
    let mut agent = dynamic_agent(73);
    let mut m = maintainer(&mut agent);
    let site = mdbs_core::catalog::SiteId::from("site-1");

    // Persist model + accumulator, round-trip through text.
    let mut catalog = GlobalCatalog::new();
    catalog.insert_model(site.clone(), m.class(), m.derived.model.clone());
    catalog.insert_accumulator(site.clone(), m.class(), m.accumulator().clone());
    let restored = GlobalCatalog::import(&catalog.export()).expect("catalog round-trips");
    let acc = restored
        .accumulator(&site, m.class())
        .expect("gram-entry restored")
        .clone();
    assert_eq!(&acc, m.accumulator(), "text format is bit-exact");

    // Restore into the maintainer and continue refitting from it.
    m.restore_accumulator(acc)
        .expect("accumulator matches model");
    let fresh = fresh_observations(&mut agent, 30, 74);
    m.refit_incremental(&site, &fresh, None, &mut PipelineCtx::default())
        .expect("refit from restored statistics");
    assert_eq!(m.incremental_refits, 1);

    // A mismatched accumulator (different variable set) is rejected.
    let wrong = mdbs_core::ModelAccumulator::from_parts(
        m.derived.model.form,
        m.derived.model.states.clone(),
        vec![],
        vec![],
        vec![mdbs_stats::GramAccumulator::new(1); m.derived.model.states.len()],
    )
    .expect("well-formed accumulator");
    assert!(
        m.restore_accumulator(wrong).is_err(),
        "shape mismatch accepted"
    );
}
/// The delta-recording refit path: a republish yields a `CatalogDelta`
/// (replacement model + accumulator *increment*) instead of a rewritten
/// catalog, and replaying base + delta reproduces the maintainer's state
/// bit for bit — the store's append path and the maintainer advance
/// through the same merge operation.
#[test]
fn incremental_refit_delta_replays_bit_exact() {
    let mut agent = dynamic_agent(75);
    let mut m = maintainer(&mut agent);
    let site = mdbs_core::catalog::SiteId::from("site-1");

    // Base snapshot: exactly what an archive taken before the refit holds.
    let mut catalog = GlobalCatalog::new();
    catalog.insert_model(site.clone(), m.class(), m.derived.model.clone());
    catalog.insert_accumulator(site.clone(), m.class(), m.accumulator().clone());
    let mut snapshot = mdbs_core::CatalogSnapshot::at_version(catalog, 7);

    let fresh = fresh_observations(&mut agent, 40, 76);
    let (delta, published) = m
        .refit_incremental_delta(&site, &fresh, None, 7, &mut PipelineCtx::default())
        .expect("delta refit succeeds");
    assert!(published.is_none(), "no registry was attached");
    assert_eq!((delta.base_version, delta.version), (7, 8));
    assert_eq!(delta.len(), 2, "one model put + one accumulator increment");

    snapshot
        .apply_delta(&delta)
        .expect("delta applies to its base");
    assert_eq!(snapshot.version, 8);
    assert_eq!(
        snapshot.catalog.model(&site, m.class()),
        Some(&m.derived.model)
    );
    assert_eq!(
        snapshot.catalog.accumulator(&site, m.class()),
        Some(m.accumulator()),
        "replayed increment must be bit-exact with the live accumulator"
    );

    // A registry-published version wins over base + 1 when it is larger.
    let registry = ModelRegistry::new();
    for _ in 0..11 {
        registry.publish(site.clone(), m.class(), m.derived.model.clone());
    }
    let fresh = fresh_observations(&mut agent, 20, 77);
    let (delta, published) = m
        .refit_incremental_delta(
            &site,
            &fresh,
            Some(&registry),
            8,
            &mut PipelineCtx::default(),
        )
        .expect("delta refit succeeds");
    let v = published.expect("registry publish ran");
    assert!(v > 9, "test premise: registry version outruns base + 1");
    assert_eq!((delta.base_version, delta.version), (8, v));
    snapshot.apply_delta(&delta).expect("chained delta applies");
    assert_eq!(
        snapshot.catalog.accumulator(&site, m.class()),
        Some(m.accumulator()),
        "second replayed increment must stay bit-exact"
    );
}

/// *and* gets physically reorganized (tables re-clustered on the hot
/// predicate column a2) — re-routes the *existing* production workload
/// from sequential scans to clustered-index scans on cheap storage. The
/// workload is frozen before the change (real production queries do not
/// rewrite themselves), so the stale G1 model overestimates massively and
/// the drift monitor notices.
#[test]
fn site_migration_drifts_on_stale_workload() {
    let mut agent = dynamic_agent(69);
    let mut m = maintainer(&mut agent);

    // Freeze a production workload against the pre-change schema.
    let mut generator = SampleGenerator::new(70);
    let frozen: Vec<_> = (0..80)
        .map(|_| generator.generate(QueryClass::UnaryNoIndex, agent.catalog()))
        .collect();

    // The migration: every table re-clustered on a2 (column 1, the column
    // every G1 query filters on) plus much faster storage.
    let ids: Vec<_> = agent.catalog().tables().iter().map(|t| t.id).collect();
    for id in ids {
        agent
            .apply_event(&EnvironmentEvent::CreateIndex {
                table: id,
                column: 1,
                kind: mdbs_sim::catalog::IndexKind::Clustered,
            })
            .expect("valid event");
    }
    agent
        .apply_event(&EnvironmentEvent::DiskReplacement {
            io_cost_factor: 0.15,
        })
        .expect("valid event");

    // Replay the frozen workload through the stale model.
    let family = VariableFamily::Unary;
    let mut drifted = false;
    for q in &frozen {
        let Some(x) = family.extract(agent.catalog(), q) else {
            continue;
        };
        agent.tick();
        let probe = agent.probe();
        let x_sel: Vec<f64> = m.derived.model.var_indexes.iter().map(|&i| x[i]).collect();
        let est = m.derived.model.estimate(&x_sel, probe);
        let obs = agent.run(q).expect("query runs").cost_s;
        drifted |= m.observe(obs, est, &mut PipelineCtx::default());
    }
    assert!(drifted, "site migration went undetected");
}
