//! End-to-end determinism: identical seeds must reproduce identical
//! results, bit for bit. This is the property the whole in-tree RNG
//! migration exists to guarantee — experiment output is a pure function
//! of the seed, so every number in the paper-reproduction tables can be
//! regenerated exactly.

use mdbs_bench::workloads::Site;
use mdbs_core::classes::QueryClass;
use mdbs_core::sampling::SampleGenerator;
use std::process::Command;

/// The repro binary run twice with the same target must produce
/// byte-identical stdout.
#[test]
fn repro_binary_is_byte_identical_across_runs() {
    let run = || {
        let out = Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(["--quick", "fig1"])
            .output()
            .expect("repro binary runs");
        assert!(
            out.status.success(),
            "repro failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let first = run();
    let second = run();
    assert!(!first.is_empty(), "repro produced no output");
    assert_eq!(
        first, second,
        "same seed + same target must reproduce identical bytes"
    );
}

/// Two independently constructed agents with the same environment seed,
/// driven by two identically seeded sample generators, must observe the
/// exact same execution trace (costs, cardinalities, access paths).
#[test]
fn identical_seeds_reproduce_identical_engine_traces() {
    let trace = || {
        let mut agent = Site::Oracle.dynamic_agent(123);
        let mut generator = SampleGenerator::new(77);
        let mut out = Vec::new();
        for i in 0..40 {
            let class = if i % 2 == 0 {
                QueryClass::UnaryNoIndex
            } else {
                QueryClass::JoinNoIndex
            };
            let query = generator.generate(class, agent.catalog());
            let exec = agent.run(&query).expect("valid query");
            out.push((
                exec.cost_s.to_bits(),
                format!("{:?}", exec.sizes),
                format!("{:?}", exec.access),
            ));
        }
        out
    };
    let first = trace();
    let second = trace();
    assert_eq!(
        first, second,
        "engine trace must be a pure function of the seeds"
    );
}

/// Different environment seeds must not collapse onto the same trace —
/// guards against a seed being silently ignored somewhere in the stack.
#[test]
fn different_seeds_diverge() {
    let costs = |env_seed: u64| {
        let mut agent = Site::Oracle.dynamic_agent(env_seed);
        let mut generator = SampleGenerator::new(77);
        (0..20)
            .map(|_| {
                let query = generator.generate(QueryClass::UnaryNoIndex, agent.catalog());
                agent.run(&query).expect("valid query").cost_s.to_bits()
            })
            .collect::<Vec<_>>()
    };
    assert_ne!(costs(123), costs(124), "distinct seeds should diverge");
}
