//! The versioned snapshot store end to end: a genuinely derived
//! multi-vendor, multi-class catalog (with accumulators) survives
//! text → binary → text byte-identically, a restore that replays
//! base + deltas lands on the exact bytes of the producer's snapshot,
//! and corrupt or version-skewed files fail cleanly.

use mdbs_core::catalog::{GlobalCatalog, SiteId};
use mdbs_core::classes::QueryClass;
use mdbs_core::derive::{derive_cost_model, DerivationConfig};
use mdbs_core::model::ModelAccumulator;
use mdbs_core::observation::Observation;
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::states::StateAlgorithm;
use mdbs_core::store::{
    snapshot_to_bytes, CatalogDelta, CatalogFormat, CatalogSnapshot, CatalogStore,
    FileCatalogStore, BINARY_MAGIC,
};
use mdbs_obs::Telemetry;
use mdbs_sim::datagen::standard_database;
use mdbs_sim::{ContentionProfile, LoadBuilder, MdbsAgent, VendorProfile};
use std::path::PathBuf;

const CLASSES: [QueryClass; 3] = [
    QueryClass::UnaryNoIndex,
    QueryClass::UnaryNonClusteredIndex,
    QueryClass::UnaryClusteredIndex,
];

/// Two vendors × three classes, every pair carrying its accumulator, one
/// probe estimator per site — the catalog shape the acceptance criteria
/// name, populated by real derivations rather than hand-built models.
fn derived_snapshot(
    version: u64,
) -> (CatalogSnapshot, Vec<(SiteId, QueryClass, Vec<Observation>)>) {
    let mut catalog = GlobalCatalog::new();
    let mut held_out = Vec::new();
    for (site_name, profile, seed) in [
        ("oracle-a", VendorProfile::oracle8(), 42),
        ("db2-b", VendorProfile::db2v5(), 43),
    ] {
        let site: SiteId = site_name.into();
        let mut agent = MdbsAgent::new(profile, standard_database(seed), 50);
        agent.set_load_builder(LoadBuilder::new(ContentionProfile::Uniform {
            lo: 20.0,
            hi: 125.0,
        }));
        let cfg = DerivationConfig {
            sample_size: Some(150),
            fit_probe_estimator: true,
            ..DerivationConfig::default()
        };
        for class in CLASSES {
            let derived = derive_cost_model(
                &mut agent,
                class,
                StateAlgorithm::Iupma,
                &cfg,
                &mut PipelineCtx::seeded(seed + 7),
            )
            .expect("derivation succeeds");
            // Seed the accumulator with most observations and keep the
            // tail back so delta tests have genuine new data to fold in.
            let split = derived.observations.len() - 10;
            let acc =
                ModelAccumulator::from_observations(&derived.model, &derived.observations[..split]);
            held_out.push((site.clone(), class, derived.observations[split..].to_vec()));
            if let Some(est) = derived.probe_estimator.clone() {
                catalog.insert_probe_estimator(site.clone(), est);
            }
            catalog.insert_model(site.clone(), class, derived.model);
            catalog.insert_accumulator(site.clone(), class, acc);
        }
    }
    (CatalogSnapshot::at_version(catalog, version), held_out)
}

fn scratch(name: &str) -> PathBuf {
    // PID-scoped so concurrent test runs never race on the same files.
    let dir = std::env::temp_dir().join(format!("mdbs-catalog-store-it.{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn text_binary_text_round_trip_preserves_catalog_bytes() {
    let (snap, _) = derived_snapshot(9);
    let mut tel = Telemetry::enabled();

    let text_path = scratch("roundtrip.txt");
    let text_store = FileCatalogStore::new(&text_path, CatalogFormat::Text);
    text_store.store(&snap, &mut tel).unwrap();
    let original_text = std::fs::read(&text_path).unwrap();

    // text → binary
    let bin_path = scratch("roundtrip.mdbc");
    let loaded = FileCatalogStore::sniffing(&text_path)
        .load(&mut tel)
        .unwrap();
    assert_eq!(loaded.version, 9, "snapshot version survives the text form");
    let bin_store = FileCatalogStore::new(&bin_path, CatalogFormat::Binary);
    bin_store.store(&loaded, &mut tel).unwrap();
    let binary = std::fs::read(&bin_path).unwrap();
    assert!(binary.starts_with(&BINARY_MAGIC));
    assert!(
        binary.len() * 2 < original_text.len(),
        "binary catalog not compact: {} vs {} bytes",
        binary.len(),
        original_text.len()
    );

    // binary → text: byte-identical to the first text export, Gram
    // accumulator blocks included.
    let back = FileCatalogStore::sniffing(&bin_path)
        .load(&mut tel)
        .unwrap();
    let final_path = scratch("roundtrip-back.txt");
    FileCatalogStore::new(&final_path, CatalogFormat::Text)
        .store(&back, &mut tel)
        .unwrap();
    assert_eq!(
        std::fs::read(&final_path).unwrap(),
        original_text,
        "text -> binary -> text must preserve catalog bytes exactly"
    );
    // The binary form itself is byte-stable under re-encode.
    assert_eq!(snapshot_to_bytes(&back), binary);
}

#[test]
fn restore_of_base_plus_deltas_matches_full_snapshot_bytes() {
    let (mut producer, held_out) = derived_snapshot(3);
    let path = scratch("chain.mdbc");
    let store = FileCatalogStore::new(&path, CatalogFormat::Binary);
    let mut tel = Telemetry::enabled();
    store.store(&producer, &mut tel).unwrap();
    let base_len = std::fs::read(&path).unwrap().len();

    // The producer folds held-out observations in one (site, class) at a
    // time, appending each advance as a delta frame.
    for (site, class, obs) in &held_out {
        let increment = producer
            .catalog
            .accumulator(site, *class)
            .expect("accumulator stored")
            .increment_from(obs);
        let base = producer.version;
        let mut delta = CatalogDelta::new(base, base + 1);
        delta.merge_accumulator(site.clone(), *class, increment);
        producer.apply_delta(&delta).unwrap();
        store.append_delta(&delta, &mut tel).unwrap();
    }
    assert_eq!(producer.version, 3 + held_out.len() as u64);

    // Restore replays base + chain and lands on the producer's bytes.
    let restored = store.load(&mut tel).unwrap();
    assert_eq!(restored.version, producer.version);
    assert_eq!(
        snapshot_to_bytes(&restored),
        snapshot_to_bytes(&producer),
        "restore(base + deltas) must be byte-identical to the full snapshot"
    );

    // Each append wrote O(delta) bytes: far below the base snapshot,
    // which carries the whole catalog.
    let grown = std::fs::read(&path).unwrap().len();
    let per_delta = (grown - base_len) / held_out.len();
    assert!(
        per_delta * 4 < base_len,
        "delta frames should be a small fraction of the snapshot: {per_delta} vs {base_len}"
    );
}

#[test]
fn corrupt_files_fail_cleanly() {
    let (snap, _) = derived_snapshot(1);
    let path = scratch("corrupt.mdbc");
    let mut tel = Telemetry::enabled();
    let store = FileCatalogStore::new(&path, CatalogFormat::Binary);
    store.store(&snap, &mut tel).unwrap();
    let good = std::fs::read(&path).unwrap();

    // Truncated file.
    std::fs::write(&path, &good[..good.len() / 2]).unwrap();
    let msg = format!("{}", store.load(&mut tel).unwrap_err());
    assert!(msg.contains("catalog binary error"), "{msg}");

    // Bad magic: neither MDBC nor UTF-8 text header.
    let mut bad = good.clone();
    bad[0] = 0xFE;
    std::fs::write(&path, &bad).unwrap();
    assert!(store.load(&mut tel).is_err());

    // Wrong container format version.
    let mut bad = good.clone();
    bad[4] = 0x63;
    std::fs::write(&path, &bad).unwrap();
    let msg = format!("{}", store.load(&mut tel).unwrap_err());
    assert!(msg.contains("format version"), "{msg}");
}

#[test]
fn version_skewed_delta_chain_is_rejected() {
    let (mut producer, held_out) = derived_snapshot(5);
    let path = scratch("skew.mdbc");
    let store = FileCatalogStore::new(&path, CatalogFormat::Binary);
    let mut tel = Telemetry::enabled();
    store.store(&producer, &mut tel).unwrap();

    // A delta whose base version does not match the stored snapshot.
    let (site, class, obs) = &held_out[0];
    let increment = producer
        .catalog
        .accumulator(site, *class)
        .unwrap()
        .increment_from(obs);
    let mut skewed = CatalogDelta::new(99, 100);
    skewed.merge_accumulator(site.clone(), *class, increment.clone());
    store.append_delta(&skewed, &mut tel).unwrap();
    let msg = format!("{}", store.load(&mut tel).unwrap_err());
    assert!(msg.contains("base snapshot version 99"), "{msg}");

    // And the same delta rejected in memory leaves the snapshot intact.
    let err = producer.apply_delta(&skewed).unwrap_err();
    assert!(format!("{err}").contains("base snapshot version 99"));
    assert_eq!(producer.version, 5);
}

#[test]
fn missing_file_loads_as_empty_only_through_load_or_empty() {
    let path = scratch("never-written.mdbc");
    let _ = std::fs::remove_file(&path);
    let store = FileCatalogStore::sniffing(&path);
    let mut tel = Telemetry::enabled();
    let snap = store.load_or_empty(&mut tel).unwrap();
    assert_eq!(snap.version, 0);
    assert!(snap.catalog.is_empty());
    // The strict path reports the IO failure instead.
    let msg = format!("{}", store.load(&mut tel).unwrap_err());
    assert!(msg.contains("cannot read"), "{msg}");
}
