//! Guard test for the zero-external-dependency policy.
//!
//! The build environment resolves crates only from an offline path set, so
//! any registry dependency breaks `cargo build --offline` at resolution
//! time — before a single test runs. This test parses every manifest in the
//! workspace and fails if a dependency section names anything other than
//! the in-tree path crates. The check is a whitelist on purpose:
//! naming specific banned packages would rot as soon as a new one appeared.

use std::fs;
use std::path::{Path, PathBuf};

/// The only dependencies any manifest may declare: our own path crates.
const ALLOWED: [&str; 4] = ["mdbs-obs", "mdbs-stats", "mdbs-sim", "mdbs-core"];

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn manifests() -> Vec<PathBuf> {
    let root = workspace_root();
    let mut found = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    for entry in fs::read_dir(&crates).expect("crates/ directory exists") {
        let manifest = entry.expect("readable entry").path().join("Cargo.toml");
        if manifest.is_file() {
            found.push(manifest);
        }
    }
    assert!(
        found.len() >= 6,
        "expected the root manifest plus at least five crate manifests, found {}",
        found.len()
    );
    found
}

/// True for any `[...]` section header that declares dependencies:
/// `[dependencies]`, `[dev-dependencies]`, `[build-dependencies]`,
/// `[workspace.dependencies]`, `[target.'...'.dependencies]`, and the
/// `[dependencies.<name>]` long form.
fn dependency_section(header: &str) -> Option<Option<String>> {
    let inner = header.trim().trim_start_matches('[').trim_end_matches(']');
    let parts: Vec<&str> = inner.split('.').collect();
    for (i, part) in parts.iter().enumerate() {
        if part.ends_with("dependencies") {
            // `[dependencies.foo]` names the dependency in the next segment.
            return Some(parts.get(i + 1).map(|s| s.trim().to_string()));
        }
    }
    None
}

#[test]
fn every_manifest_declares_only_in_tree_path_dependencies() {
    let mut violations = Vec::new();

    for manifest in manifests() {
        let text = fs::read_to_string(&manifest).expect("manifest is readable");
        let mut in_dep_section = false;
        for raw in text.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line.starts_with('[') {
                match dependency_section(line) {
                    Some(Some(name)) => {
                        // `[dependencies.<name>]` long-form table header.
                        in_dep_section = false;
                        if !ALLOWED.contains(&name.as_str()) {
                            violations.push(format!("{}: section {line}", manifest.display()));
                        }
                    }
                    Some(None) => in_dep_section = true,
                    None => in_dep_section = false,
                }
                continue;
            }
            if !in_dep_section {
                continue;
            }
            let Some((name, value)) = line.split_once('=') else {
                continue;
            };
            let name = name.trim().trim_matches('"');
            if !ALLOWED.contains(&name) {
                violations.push(format!("{}: dependency `{name}`", manifest.display()));
            } else if !value.contains("path") && !value.contains("workspace") {
                violations.push(format!(
                    "{}: `{name}` must be a path or workspace dependency, got `{}`",
                    manifest.display(),
                    value.trim()
                ));
            }
        }
    }

    assert!(
        violations.is_empty(),
        "non-hermetic dependencies found (only in-tree path crates are allowed):\n  {}",
        violations.join("\n  ")
    );
}

#[test]
fn workspace_dependency_table_lists_exactly_the_path_crates() {
    let text =
        fs::read_to_string(workspace_root().join("Cargo.toml")).expect("root manifest readable");
    let mut in_table = false;
    let mut names = Vec::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_table = line == "[workspace.dependencies]";
            continue;
        }
        if in_table && !line.is_empty() && !line.starts_with('#') {
            if let Some((name, _)) = line.split_once('=') {
                names.push(name.trim().to_string());
            }
        }
    }
    names.sort();
    let mut expected: Vec<String> = ALLOWED.iter().map(|s| s.to_string()).collect();
    expected.sort();
    assert_eq!(
        names, expected,
        "[workspace.dependencies] must list exactly the in-tree crates"
    );
}
