//! Guard test for the zero-external-dependency policy.
//!
//! The build environment resolves crates only from an offline path set, so
//! any registry dependency breaks `cargo build --offline` at resolution
//! time — before a single test runs. The manifest parsing and the
//! whitelist live in `mdbs_lint` (its `hermetic-manifests` rule, which
//! `mdbs-lint` and ci.sh also run); this test is a thin wrapper so the
//! policy is enforced from `cargo test` too, with exactly one
//! implementation to keep honest.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn every_manifest_declares_only_in_tree_path_dependencies() {
    let findings =
        mdbs_lint::check_manifests(&workspace_root()).expect("workspace manifests are readable");
    assert!(
        findings.is_empty(),
        "non-hermetic dependencies found (only in-tree path crates are allowed):\n{}",
        mdbs_lint::render(&findings)
    );
}

#[test]
fn the_whitelist_is_exactly_the_in_tree_package_set() {
    // The whitelist is derived from `crates/*/Cargo.toml`, so it can never
    // drift from the workspace layout; sanity-check it contains the crates
    // this test itself depends on.
    let names =
        mdbs_lint::in_tree_package_names(&workspace_root()).expect("crates/ directory is readable");
    for expected in ["mdbs-core", "mdbs-bench", "mdbs-lint", "mdbs-obs"] {
        assert!(names.contains(expected), "missing {expected} in {names:?}");
    }
}
