//! The MDBS global catalog with genuinely derived models: classification →
//! model lookup → variable extraction → state-aware estimation, end to end.

use mdbs_core::catalog::{GlobalCatalog, SiteId};
use mdbs_core::classes::{classify, QueryClass};
use mdbs_core::correction::EstimateQuery;
use mdbs_core::derive::{derive_cost_model, DerivationConfig};
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::probing::ProbeCostEstimator;
use mdbs_core::sampling::SampleGenerator;
use mdbs_core::states::StateAlgorithm;
use mdbs_sim::contention::Load;
use mdbs_sim::datagen::standard_database;
use mdbs_sim::{ContentionProfile, LoadBuilder, MdbsAgent, VendorProfile};

fn populated_catalog() -> (GlobalCatalog, MdbsAgent, SiteId) {
    let site: SiteId = "s1".into();
    let mut agent = MdbsAgent::new(VendorProfile::oracle8(), standard_database(42), 50);
    agent.set_load_builder(LoadBuilder::new(ContentionProfile::Uniform {
        lo: 20.0,
        hi: 125.0,
    }));
    let mut catalog = GlobalCatalog::new();
    let cfg = DerivationConfig {
        sample_size: Some(220),
        fit_probe_estimator: true,
        ..DerivationConfig::default()
    };
    for class in [QueryClass::UnaryNoIndex, QueryClass::UnaryNonClusteredIndex] {
        let derived = derive_cost_model(
            &mut agent,
            class,
            StateAlgorithm::Iupma,
            &cfg,
            &mut PipelineCtx::seeded(51),
        )
        .expect("derivation succeeds");
        if let Some(est) = derived.probe_estimator.clone() {
            catalog.insert_probe_estimator(site.clone(), est);
        }
        catalog.insert_model(site.clone(), class, derived.model);
    }
    (catalog, agent, site)
}

#[test]
fn catalog_estimates_match_observations_reasonably() {
    let (catalog, mut agent, site) = populated_catalog();
    assert_eq!(catalog.len(), 2);
    assert_eq!(catalog.classes_for(&site).len(), 2);

    let schema = agent.catalog().clone();
    let mut generator = SampleGenerator::new(77);
    let mut good = 0;
    let trials = 30;
    for _ in 0..trials {
        let query = generator.generate(QueryClass::UnaryNoIndex, &schema);
        agent.tick();
        let probe = agent.probe();
        let est = catalog
            .estimate(&EstimateQuery::raw(&site, &schema, &query, probe))
            .expect("model available for the class")
            .estimate;
        let obs = agent.run(&query).expect("query runs").cost_s;
        let ratio = (est / obs).max(obs / est.max(1e-9));
        if est > 0.0 && ratio <= 2.0 {
            good += 1;
        }
    }
    assert!(
        good * 100 >= trials * 50,
        "catalog estimates good for only {good}/{trials} queries"
    );
}

#[test]
fn catalog_dispatches_by_class() {
    let (catalog, agent, site) = populated_catalog();
    let schema = agent.catalog().clone();
    let mut generator = SampleGenerator::new(78);
    // Queries of both stored classes estimate; join queries (no model) do not.
    let unary = generator.generate(QueryClass::UnaryNoIndex, &schema);
    let indexed = generator.generate(QueryClass::UnaryNonClusteredIndex, &schema);
    let join = generator.generate(QueryClass::JoinNoIndex, &schema);
    assert!(catalog
        .estimate(&EstimateQuery::raw(&site, &schema, &unary, 1.0))
        .is_some());
    assert!(catalog
        .estimate(&EstimateQuery::raw(&site, &schema, &indexed, 1.0))
        .is_some());
    assert!(catalog
        .estimate(&EstimateQuery::raw(&site, &schema, &join, 1.0))
        .is_none());
    // And the classification the catalog relied on is consistent.
    assert_eq!(classify(&schema, &unary), Some(QueryClass::UnaryNoIndex));
    assert_eq!(classify(&schema, &join), Some(QueryClass::JoinNoIndex));
}

#[test]
fn catalog_survives_export_import_with_identical_estimates() {
    let (catalog, mut agent, site) = populated_catalog();
    let text = catalog.export();
    let restored = GlobalCatalog::import(&text).expect("import succeeds");
    assert_eq!(restored.len(), catalog.len());
    assert!(restored.probe_estimator(&site).is_some());

    // Every estimate must be bit-identical after the round trip.
    let schema = agent.catalog().clone();
    let mut generator = SampleGenerator::new(81);
    for _ in 0..20 {
        let q = generator.generate(QueryClass::UnaryNoIndex, &schema);
        agent.tick();
        let probe = agent.probe();
        let a = catalog.estimate(&EstimateQuery::raw(&site, &schema, &q, probe));
        let b = restored.estimate(&EstimateQuery::raw(&site, &schema, &q, probe));
        assert_eq!(a, b);
    }
    // And a second export is byte-identical (canonical form).
    assert_eq!(restored.export(), text);
}

#[test]
fn estimated_probe_costs_can_replace_observed_ones() {
    let (catalog, mut agent, site) = populated_catalog();
    let est: &ProbeCostEstimator = catalog
        .probe_estimator(&site)
        .expect("estimator stored during derivation");
    // Across the load range, estimated probe costs must rank environments
    // the same way observed ones do (monotone agreement).
    let mut pairs = Vec::new();
    for procs in [25.0, 60.0, 95.0, 120.0] {
        agent.set_load(Load::background(procs));
        let stats = agent.stats();
        pairs.push((est.estimate(&stats), agent.probe()));
    }
    for w in pairs.windows(2) {
        assert!(
            w[1].0 > w[0].0,
            "estimated probe cost not increasing: {pairs:?}"
        );
        assert!(w[1].1 > w[0].1, "observed probe cost not increasing");
    }
}
