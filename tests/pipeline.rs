//! Cross-crate integration: the full multi-states derivation pipeline
//! against simulated local DBSs, exercising `mdbs-stats`, `mdbs-sim` and
//! `mdbs-core` together.

use mdbs_core::classes::QueryClass;
use mdbs_core::derive::{derive_cost_model, DerivationConfig};
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::selection::SelectionConfig;
use mdbs_core::states::{StateAlgorithm, StatesConfig};
use mdbs_core::validate::{quality, run_test_queries};
use mdbs_sim::datagen::standard_database;
use mdbs_sim::{ContentionProfile, LoadBuilder, MdbsAgent, VendorProfile};

fn dynamic_agent(vendor: VendorProfile, db_seed: u64, env_seed: u64) -> MdbsAgent {
    let mut agent = MdbsAgent::new(vendor, standard_database(db_seed), env_seed);
    agent.set_load_builder(LoadBuilder::new(ContentionProfile::Uniform {
        lo: 20.0,
        hi: 125.0,
    }));
    agent
}

fn quick_cfg(samples: usize) -> DerivationConfig {
    DerivationConfig {
        sample_size: Some(samples),
        fit_probe_estimator: false,
        ..DerivationConfig::default()
    }
}

#[test]
fn unary_pipeline_on_oracle() {
    let mut agent = dynamic_agent(VendorProfile::oracle8(), 42, 1);
    let derived = derive_cost_model(
        &mut agent,
        QueryClass::UnaryNoIndex,
        StateAlgorithm::Iupma,
        &quick_cfg(260),
        &mut PipelineCtx::seeded(2),
    )
    .expect("derivation succeeds");
    assert!(derived.model.num_states() >= 2);
    assert!(derived.model.fit.r_squared > 0.9);
    assert!(derived.model.fit.f_p_value < 0.01, "model fails the F-test");
    // The model must include at least one cardinality variable.
    assert!(derived.model.var_names.iter().any(|n| n.starts_with("N_")));
    // Estimates on held-out queries are mostly usable.
    let points = run_test_queries(&mut agent, QueryClass::UnaryNoIndex, &derived.model, 40, 3)
        .expect("test run succeeds");
    let q = quality(&points);
    assert!(q.good_pct > 50.0, "only {}% good", q.good_pct);
}

#[test]
fn join_pipeline_on_db2() {
    let mut agent = dynamic_agent(VendorProfile::db2v5(), 43, 4);
    let derived = derive_cost_model(
        &mut agent,
        QueryClass::JoinNoIndex,
        StateAlgorithm::Iupma,
        &quick_cfg(300),
        &mut PipelineCtx::seeded(5),
    )
    .expect("join derivation succeeds");
    assert!(derived.model.num_states() >= 2);
    assert!(derived.model.fit.r_squared > 0.85);
    // Join models should lean on intermediate/cartesian sizes.
    assert!(derived
        .model
        .var_names
        .iter()
        .any(|n| n.contains("N_I") || n.contains("N_R") || n.contains("N_O")));
}

#[test]
fn every_class_derives_on_both_vendors() {
    for (vendor, db_seed) in [(VendorProfile::oracle8(), 42), (VendorProfile::db2v5(), 43)] {
        for class in QueryClass::all() {
            let mut agent = dynamic_agent(vendor.clone(), db_seed, 100 + db_seed);
            let cfg = DerivationConfig {
                states: StatesConfig {
                    max_states: 3,
                    ..StatesConfig::default()
                },
                sample_size: Some(170),
                fit_probe_estimator: false,
                ..DerivationConfig::default()
            };
            let derived = derive_cost_model(
                &mut agent,
                class,
                StateAlgorithm::Iupma,
                &cfg,
                &mut PipelineCtx::seeded(6),
            )
            .unwrap_or_else(|e| panic!("{class:?} on {}: {e}", vendor.name));
            assert!(
                derived.model.fit.r_squared > 0.6,
                "{class:?} on {} fits poorly: {}",
                vendor.name,
                derived.model.fit.r_squared
            );
        }
    }
}

#[test]
fn icma_pipeline_on_clustered_environment() {
    let mut agent = MdbsAgent::new(VendorProfile::oracle8(), standard_database(42), 9);
    agent.set_load_builder(LoadBuilder::new(ContentionProfile::paper_clustered()));
    let derived = derive_cost_model(
        &mut agent,
        QueryClass::UnaryNoIndex,
        StateAlgorithm::Icma,
        &quick_cfg(260),
        &mut PipelineCtx::seeded(10),
    )
    .expect("ICMA derivation succeeds");
    assert!(derived.model.num_states() >= 2);
    assert!(derived.model.fit.r_squared > 0.85);
}

#[test]
fn probe_estimator_supports_estimation_flow() {
    let mut agent = dynamic_agent(VendorProfile::oracle8(), 42, 11);
    let cfg = DerivationConfig {
        sample_size: Some(200),
        fit_probe_estimator: true,
        ..DerivationConfig::default()
    };
    let derived = derive_cost_model(
        &mut agent,
        QueryClass::UnaryNoIndex,
        StateAlgorithm::Iupma,
        &cfg,
        &mut PipelineCtx::seeded(12),
    )
    .expect("derivation with probe estimator");
    let est = derived.probe_estimator.expect("estimator requested");
    assert!(
        est.r_squared > 0.7,
        "eq.(2) fit too weak: {}",
        est.r_squared
    );
    // Using the *estimated* probe cost should land in the same or an
    // adjacent contention state as the observed one, most of the time.
    let mut close = 0;
    let trials = 30;
    for _ in 0..trials {
        agent.tick();
        let stats = agent.stats();
        let predicted = est.estimate(&stats);
        let observed = agent.probe();
        let s_pred = derived.model.states.state_of(predicted);
        let s_obs = derived.model.states.state_of(observed);
        if s_pred.abs_diff(s_obs) <= 1 {
            close += 1;
        }
    }
    assert!(
        close * 100 >= trials * 70,
        "estimated probe matched observed state only {close}/{trials} times"
    );
}

#[test]
fn derivation_is_deterministic() {
    let run = || {
        let mut agent = dynamic_agent(VendorProfile::db2v5(), 43, 21);
        derive_cost_model(
            &mut agent,
            QueryClass::UnaryNonClusteredIndex,
            StateAlgorithm::Iupma,
            &quick_cfg(200),
            &mut PipelineCtx::seeded(22),
        )
        .expect("derivation succeeds")
    };
    let a = run();
    let b = run();
    assert_eq!(a.model.coefficients, b.model.coefficients);
    assert_eq!(a.model.states.edges(), b.model.states.edges());
    assert_eq!(a.model.var_names, b.model.var_names);
}

#[test]
fn sort_variable_selected_for_sorted_workloads() {
    // The sample generator orders about a third of unary queries; sorting
    // adds an N·log N cost the basic size variables cannot fully explain.
    // The SORT candidate competes with N_R (they correlate on the sorted
    // subset), so selection is run over three independent samples and the
    // variable must win in most of them.
    let mut selected = 0;
    for seed in [31u64, 51, 71] {
        let mut agent = dynamic_agent(VendorProfile::oracle8(), 42, seed);
        let cfg = DerivationConfig {
            sample_size: Some(400),
            fit_probe_estimator: false,
            selection: SelectionConfig {
                forward_min_gain: 0.005,
                ..SelectionConfig::default()
            },
            ..DerivationConfig::default()
        };
        let derived = derive_cost_model(
            &mut agent,
            QueryClass::UnaryNoIndex,
            StateAlgorithm::Iupma,
            &cfg,
            &mut PipelineCtx::seeded(seed + 1),
        )
        .expect("derivation succeeds");
        if derived.model.var_names.iter().any(|n| n == "SORT") {
            selected += 1;
        }
        let points = run_test_queries(
            &mut agent,
            QueryClass::UnaryNoIndex,
            &derived.model,
            40,
            seed + 2,
        )
        .expect("test run succeeds");
        let q = quality(&points);
        assert!(q.good_pct > 50.0, "seed {seed}: only {}% good", q.good_pct);
    }
    assert!(selected >= 2, "SORT selected in only {selected}/3 samples");
}
