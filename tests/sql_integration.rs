//! SQL-to-execution integration: the textual surface drives the whole
//! stack — parse, classify, estimate through a derived model, execute,
//! compare — across both simulated vendors.

use mdbs_core::catalog::{GlobalCatalog, SiteId};
use mdbs_core::classes::{classify, QueryClass};
use mdbs_core::derive::{derive_cost_model, DerivationConfig};
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::states::StateAlgorithm;
use mdbs_sim::datagen::standard_database;
use mdbs_sim::sql::{parse_query, to_sql};
use mdbs_sim::{ContentionProfile, LoadBuilder, MdbsAgent, VendorProfile};

fn dynamic_agent(vendor: VendorProfile, db_seed: u64) -> MdbsAgent {
    let mut agent = MdbsAgent::new(vendor, standard_database(db_seed), 77);
    agent.set_load_builder(LoadBuilder::new(ContentionProfile::Uniform {
        lo: 20.0,
        hi: 125.0,
    }));
    agent
}

#[test]
fn papers_query_runs_on_both_vendors() {
    let sql = "select a1, a5, a7 from R7 where a3 > 300 and a8 < 2000";
    for (vendor, db_seed) in [(VendorProfile::oracle8(), 42), (VendorProfile::db2v5(), 43)] {
        let mut agent = dynamic_agent(vendor, db_seed);
        let query = parse_query(agent.catalog(), sql).expect("paper query parses");
        agent.tick();
        let exec = agent.run(&query).expect("paper query executes");
        assert!(exec.cost_s > 0.0);
    }
}

#[test]
fn sql_estimate_then_execute_roundtrip() {
    let mut agent = dynamic_agent(VendorProfile::oracle8(), 42);
    let derived = derive_cost_model(
        &mut agent,
        QueryClass::UnaryNoIndex,
        StateAlgorithm::Iupma,
        &DerivationConfig {
            sample_size: Some(260),
            fit_probe_estimator: false,
            ..DerivationConfig::default()
        },
        &mut PipelineCtx::seeded(5),
    )
    .expect("derivation succeeds");
    let mut catalog = GlobalCatalog::new();
    let site: SiteId = "s".into();
    catalog.insert_model(site.clone(), QueryClass::UnaryNoIndex, derived.model);

    // A batch of hand-written SQL queries of the derived class.
    let sqls = [
        "select a1, a5 from R8 where a5 > 100 and a6 < 400",
        "select * from R4 where a2 between 50 and 800",
        "select a2, a4, a9 from R10 where a6 >= 10 and a9 <= 900",
        "select a1 from R6 where a5 < 60 order by a2",
    ];
    let schema = agent.catalog().clone();
    let mut good = 0;
    for sql in sqls {
        let query = parse_query(&schema, sql).unwrap_or_else(|e| panic!("`{sql}`: {e}"));
        assert_eq!(
            classify(&schema, &query),
            Some(QueryClass::UnaryNoIndex),
            "`{sql}` classified off-class"
        );
        agent.tick();
        let probe = agent.probe();
        let est = catalog
            .estimate(&mdbs_core::correction::EstimateQuery::raw(
                &site, &schema, &query, probe,
            ))
            .expect("model stored for the class")
            .estimate;
        let obs = agent.run(&query).expect("query executes").cost_s;
        let ratio = (est / obs).max(obs / est.max(1e-9));
        if est > 0.0 && ratio <= 2.0 {
            good += 1;
        }
    }
    assert!(good >= 3, "only {good}/4 SQL estimates were good");
}

#[test]
fn roundtrip_preserves_execution_semantics() {
    // parse(to_sql(q)) must not just equal q structurally — it must cost
    // the same when executed (same access path, same sizes).
    let mut agent = MdbsAgent::new(VendorProfile::db2v5(), standard_database(43), 3);
    let schema = agent.catalog().clone();
    let sql = "select a1, a4 from R5 where a2 < 500 and a7 > 40 order by a4";
    let q1 = parse_query(&schema, sql).expect("parses");
    let q2 = parse_query(&schema, &to_sql(&schema, &q1)).expect("re-parses");
    assert_eq!(q1, q2);
    let e1 = agent.run(&q1).expect("runs");
    let e2 = agent.run(&q2).expect("runs");
    assert_eq!(e1.access, e2.access);
    assert_eq!(e1.sizes, e2.sizes);
}

#[test]
fn join_sql_executes_and_classifies() {
    let mut agent = dynamic_agent(VendorProfile::oracle8(), 42);
    let schema = agent.catalog().clone();
    let sql = "select R2.a1, R4.a2 from R2 join R4 on R2.a5 = R4.a5 \
               where R2.a2 < 500 and R4.a6 > 100";
    let query = parse_query(&schema, sql).expect("join parses");
    assert_eq!(classify(&schema, &query), Some(QueryClass::JoinNoIndex));
    agent.tick();
    let exec = agent.run(&query).expect("join executes");
    assert!(exec.cost_s > 0.0);
}
