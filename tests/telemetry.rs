//! Telemetry determinism and coverage, end to end.
//!
//! The determinism policy (`mdbs-obs` crate docs, DESIGN.md §5): telemetry
//! from a seeded run is a pure function of the seeds *except* for
//! wall-clock attribution, which is confined to fields named in
//! `mdbs_obs::telemetry::WALL_CLOCK_FIELDS`. After stripping those fields
//! the rendered JSONL from two identically seeded derivations must be
//! byte-identical.

use mdbs_bench::workloads::Site;
use mdbs_core::classes::QueryClass;
use mdbs_core::derive::{derive_cost_model, DerivationConfig};
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::states::StateAlgorithm;
use mdbs_obs::telemetry::strip_wall_clock;
use mdbs_obs::{json, Telemetry};

/// One fully traced derivation with fixed seeds; returns the telemetry.
fn traced_derivation() -> Telemetry {
    let mut agent = Site::Oracle.dynamic_agent(123);
    let mut ctx = PipelineCtx::traced(7);
    derive_cost_model(
        &mut agent,
        QueryClass::UnaryNoIndex,
        StateAlgorithm::Iupma,
        &DerivationConfig::quick(),
        &mut ctx,
    )
    .expect("derivation succeeds");
    ctx.telemetry
}

#[test]
fn same_seed_telemetry_is_byte_identical_after_wall_clock_strip() {
    let first = strip_wall_clock(&traced_derivation().render_jsonl());
    let second = strip_wall_clock(&traced_derivation().render_jsonl());
    assert!(!first.is_empty(), "no telemetry recorded");
    assert_eq!(
        first, second,
        "telemetry minus wall-clock must be a pure function of the seeds"
    );
    // The strip really removed the one sanctioned non-deterministic field.
    assert!(
        !first.contains("wall_ms"),
        "strip_wall_clock left a wall_ms field behind"
    );
}

#[test]
fn derivation_emits_exactly_one_span_per_pipeline_stage() {
    let tel = traced_derivation();
    let jsonl = tel.render_jsonl();
    for stage in [
        "derive.sampling",
        "derive.states",
        "derive.selection",
        "derive.fit",
        "derive.validation",
    ] {
        let n = jsonl
            .lines()
            .filter(|l| l.contains(&format!("\"name\":\"{stage}\"")))
            .count();
        assert_eq!(n, 1, "expected exactly one `{stage}` span, got {n}");
    }
    // Stage spans nest under the root `derive` span.
    let root = jsonl
        .lines()
        .filter(|l| l.contains("\"name\":\"derive\""))
        .count();
    assert_eq!(root, 1, "expected exactly one root `derive` span");
}

#[test]
fn derivation_folds_engine_metrics_into_the_telemetry() {
    let tel = traced_derivation();
    let executions = tel.metrics.counter("engine.executions");
    assert!(
        executions > 0,
        "engine execution counter should be folded in, got {executions}"
    );
    let probes = tel.metrics.counter("engine.probes");
    assert!(
        probes > 0,
        "probe counter should be folded in, got {probes}"
    );
}

#[test]
fn every_rendered_telemetry_line_is_valid_json() {
    let tel = traced_derivation();
    for line in tel.render_jsonl().lines() {
        let parsed = json::parse(line)
            .unwrap_or_else(|e| panic!("unparseable telemetry line `{line}`: {e:?}"));
        assert!(
            parsed.get("type").is_some(),
            "telemetry line lacks a `type` field: {line}"
        );
    }
}
