//! Old-vs-new fit parity: the sufficient-statistics (Gram) engine must
//! reproduce the legacy full-QR path.
//!
//! Three layers of evidence:
//!
//! 1. **Solver parity** — on seeded noisy designs, `GramAccumulator::solve`
//!    matches `OlsFit::fit` statistic-for-statistic to a mixed 1e-9
//!    tolerance (the two paths share every downstream formula; the only
//!    difference is QR-over-observations vs normal equations).
//! 2. **Pipeline parity** — full derivations run under
//!    [`FitEngine::FullRefit`] and [`FitEngine::Gram`] export *byte
//!    identical* catalogs, across vendors, classes and both state
//!    algorithms. The search may score candidates differently at the last
//!    bit, but the published model is always the canonical QR refit, so the
//!    catalogs must agree exactly.
//! 3. **Rank-deficient parity** — partitions that isolate a collinear band
//!    are skipped (not fatal) under both engines, with the same final
//!    model and a counted skip under Gram.

use mdbs_core::classes::QueryClass;
use mdbs_core::derive::{derive_cost_model, DerivationConfig};
use mdbs_core::model::FitEngine;
use mdbs_core::observation::Observation;
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::states::{determine_states, NoResampling, StateAlgorithm, StatesConfig};
use mdbs_core::GlobalCatalog;
use mdbs_sim::datagen::standard_database;
use mdbs_sim::{ContentionProfile, LoadBuilder, MdbsAgent, VendorProfile};
use mdbs_stats::{GramAccumulator, Matrix, OlsFit, Rng};

/// Mixed absolute/relative closeness at the parity tolerance.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

fn assert_close(a: f64, b: f64, what: &str) {
    assert!(close(a, b), "{what}: {a} vs {b}");
}

#[test]
fn gram_solve_matches_full_qr_statistics() {
    let mut rng = Rng::seed_from_u64(0xFACADE);
    for &(n, k) in &[(20usize, 3usize), (60, 5), (200, 8), (500, 12)] {
        for has_intercept in [true, false] {
            // Noisy target: an exact-fit design would push SSE into
            // catastrophic cancellation territory, which the tolerance
            // deliberately does not cover (and the pipeline never sees).
            let mut rows = Vec::with_capacity(n);
            let mut y = Vec::with_capacity(n);
            let mut acc = GramAccumulator::new(k);
            for _ in 0..n {
                let mut row = Vec::with_capacity(k);
                if has_intercept {
                    row.push(1.0);
                }
                while row.len() < k {
                    row.push(rng.gen_f64() * 100.0);
                }
                let target: f64 = row
                    .iter()
                    .enumerate()
                    .map(|(j, v)| v * (j as f64 + 0.5) * 0.02)
                    .sum::<f64>()
                    + rng.gen_f64() * 5.0;
                acc.add_row(&row, target).expect("row width matches");
                rows.push(row);
                y.push(target);
            }
            let x = Matrix::from_rows(&rows).expect("rectangular");
            let qr = OlsFit::fit(&x, &y, has_intercept).expect("full rank");
            let gram = acc.solve(has_intercept).expect("full rank");

            let what = format!("n={n} k={k} intercept={has_intercept}");
            assert_eq!(gram.n, qr.n, "{what}: n");
            assert_eq!(gram.k, qr.k, "{what}: k");
            for j in 0..k {
                assert_close(
                    gram.coefficients[j],
                    qr.coefficients[j],
                    &format!("{what}: β[{j}]"),
                );
                assert_close(
                    gram.coef_std_errors[j],
                    qr.coef_std_errors[j],
                    &format!("{what}: se[{j}]"),
                );
                assert_close(
                    gram.t_statistics[j],
                    qr.t_statistics[j],
                    &format!("{what}: t[{j}]"),
                );
                assert_close(
                    gram.t_p_values[j],
                    qr.t_p_values[j],
                    &format!("{what}: t_p[{j}]"),
                );
            }
            assert_close(gram.sse, qr.sse, &format!("{what}: SSE"));
            assert_close(gram.sst, qr.sst, &format!("{what}: SST"));
            assert_close(gram.r_squared, qr.r_squared, &format!("{what}: R²"));
            assert_close(
                gram.adj_r_squared,
                qr.adj_r_squared,
                &format!("{what}: adj R²"),
            );
            assert_close(gram.see, qr.see, &format!("{what}: SEE"));
            assert_close(gram.f_statistic, qr.f_statistic, &format!("{what}: F"));
            assert_close(gram.f_p_value, qr.f_p_value, &format!("{what}: F p"));
        }
    }
}

fn agent_for(vendor: &str, env_seed: u64) -> MdbsAgent {
    let profile = match vendor {
        "oracle8" => VendorProfile::oracle8(),
        "db2v5" => VendorProfile::db2v5(),
        other => panic!("unknown vendor {other}"),
    };
    let mut agent = MdbsAgent::new(profile, standard_database(42), env_seed);
    agent.set_load_builder(LoadBuilder::new(ContentionProfile::Uniform {
        lo: 5.0,
        hi: 125.0,
    }));
    agent
}

fn config_with_engine(engine: FitEngine) -> DerivationConfig {
    let mut cfg = DerivationConfig::quick();
    cfg.states.engine = engine;
    cfg.selection.engine = engine;
    cfg
}

/// Derives a small catalog (vendors × classes × algorithms) under one
/// engine.
fn derive_catalog(engine: FitEngine) -> GlobalCatalog {
    let mut catalog = GlobalCatalog::new();
    let cfg = config_with_engine(engine);
    for (vendor, env_seed) in [("oracle8", 11u64), ("db2v5", 12)] {
        for (class, algorithm, seed) in [
            (QueryClass::UnaryNoIndex, StateAlgorithm::Iupma, 7u64),
            (QueryClass::UnaryClusteredIndex, StateAlgorithm::Icma, 8),
            (QueryClass::JoinNoIndex, StateAlgorithm::Iupma, 9),
        ] {
            let mut agent = agent_for(vendor, env_seed);
            let derived = derive_cost_model(
                &mut agent,
                class,
                algorithm,
                &cfg,
                &mut PipelineCtx::seeded(seed),
            )
            .expect("derivation succeeds");
            catalog.insert_model(format!("{vendor}-site").into(), class, derived.model);
        }
    }
    catalog
}

#[test]
fn pipeline_catalogs_are_byte_identical_across_engines() {
    let legacy = derive_catalog(FitEngine::FullRefit);
    let gram = derive_catalog(FitEngine::Gram);
    assert_eq!(
        legacy.export(),
        gram.export(),
        "FullRefit and Gram engines published different catalogs"
    );
}

/// The collinear-band dataset from the states unit tests: any partition
/// isolating the upper half produces a singular per-state design.
fn collinear_band_observations() -> Vec<Observation> {
    (0..120)
        .map(|i| {
            let probe = i as f64 / 12.0;
            let x = if probe >= 5.0 { 7.0 } else { (i % 25) as f64 };
            Observation {
                x: vec![x],
                cost: 1.0 + 2.0 * x + probe * 0.01,
                probe_cost: probe,
            }
        })
        .collect()
}

#[test]
fn rank_deficient_partitions_skip_identically_across_engines() {
    let run = |engine: FitEngine| {
        let mut obs = collinear_band_observations();
        let cfg = StatesConfig {
            engine,
            ..StatesConfig::default()
        };
        let mut ctx = PipelineCtx::traced(0);
        let result = determine_states(
            StateAlgorithm::Iupma,
            &mut obs,
            &[0],
            &["x".to_string()],
            &cfg,
            &mut NoResampling,
            &mut ctx,
        )
        .expect("singular proposals must not abort determination");
        (result, ctx)
    };
    let (legacy, legacy_ctx) = run(FitEngine::FullRefit);
    let (gram, gram_ctx) = run(FitEngine::Gram);
    assert_eq!(gram.model, legacy.model, "published models diverged");
    assert_eq!(gram.merges, legacy.merges);
    for ctx in [&legacy_ctx, &gram_ctx] {
        assert!(
            ctx.telemetry
                .metrics
                .counter("states.rank_deficient_skipped")
                >= 1,
            "the collinear upper band must trigger at least one skip"
        );
    }
    assert!(
        gram_ctx.telemetry.metrics.counter("fit.gram.solves") >= 1,
        "Gram engine did not actually score candidates via Gram"
    );
}
