//! The parallel derivation engine and the concurrent model registry.
//!
//! The contract under test: `derive_all` output — models *and* telemetry
//! after the sanctioned wall-clock/scheduling strip — is a pure function of
//! the root seed, independent of worker count and thread scheduling; and
//! registry readers always see whole model snapshots while a publisher
//! swaps versions underneath them.

use mdbs_bench::experiments::parallel_derive::job_agent;
use mdbs_bench::workloads::Site;
use mdbs_core::catalog::GlobalCatalog;
use mdbs_core::classes::QueryClass;
use mdbs_core::derive::{derive_all, derive_cost_model, BatchConfig, DerivationConfig, DeriveJob};
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::registry::ModelRegistry;
use mdbs_core::sampling::SampleGenerator;
use mdbs_core::states::StateAlgorithm;
use mdbs_obs::telemetry::strip_wall_clock;

fn batch_jobs() -> Vec<DeriveJob> {
    let mut jobs = Vec::new();
    for site in ["db2", "oracle"] {
        for class in [QueryClass::UnaryNoIndex, QueryClass::UnaryNonClusteredIndex] {
            jobs.push(DeriveJob::new(site, class, StateAlgorithm::Iupma));
        }
    }
    jobs
}

fn run_batch(workers: usize) -> (String, String) {
    let cfg = BatchConfig {
        derivation: DerivationConfig::quick(),
        workers: Some(workers),
    };
    let mut ctx = PipelineCtx::traced(7);
    let outcomes = derive_all(batch_jobs(), &cfg, job_agent, &mut ctx);
    let mut catalog = GlobalCatalog::new();
    for outcome in outcomes {
        let derived = outcome
            .result
            .unwrap_or_else(|e| panic!("job failed at {workers} workers: {e}"));
        catalog.insert_model(outcome.job.site, outcome.job.class, derived.model);
    }
    (
        catalog.export(),
        strip_wall_clock(&ctx.telemetry.render_jsonl()),
    )
}

#[test]
fn one_worker_and_many_workers_produce_identical_models_and_telemetry() {
    let (serial_catalog, serial_telemetry) = run_batch(1);
    let (parallel_catalog, parallel_telemetry) = run_batch(4);
    assert!(!serial_catalog.trim().is_empty());
    assert_eq!(
        serial_catalog, parallel_catalog,
        "derived models must not depend on worker count"
    );
    assert!(!serial_telemetry.trim().is_empty());
    assert_eq!(
        serial_telemetry, parallel_telemetry,
        "telemetry minus wall-clock and pool.sched.* must not depend on worker count"
    );
    // The scheduling-dependent metrics really were confined to the
    // sanctioned prefix (and stripped), not silently omitted.
    assert!(
        serial_telemetry.contains("derive_all"),
        "{serial_telemetry}"
    );
    assert!(
        serial_telemetry.contains("pool.jobs_completed"),
        "{serial_telemetry}"
    );
    assert!(
        !serial_telemetry.contains("pool.sched."),
        "{serial_telemetry}"
    );
}

#[test]
fn registry_readers_see_whole_snapshots_during_version_swaps() {
    // Two genuinely different models for the same (site, class) key.
    let mut agent = Site::Oracle.dynamic_agent(200);
    let model_a = derive_cost_model(
        &mut agent,
        QueryClass::UnaryNoIndex,
        StateAlgorithm::Iupma,
        &DerivationConfig::quick(),
        &mut PipelineCtx::seeded(201),
    )
    .expect("derivation succeeds")
    .model;
    let mut agent = Site::Oracle.dynamic_agent(202);
    let model_b = derive_cost_model(
        &mut agent,
        QueryClass::UnaryNoIndex,
        StateAlgorithm::Iupma,
        &DerivationConfig::quick(),
        &mut PipelineCtx::seeded(203),
    )
    .expect("derivation succeeds")
    .model;
    assert_ne!(model_a.coefficients, model_b.coefficients);

    let schema = Site::Oracle.dynamic_agent(204).catalog().clone();
    let registry = ModelRegistry::new();
    registry.publish("oracle".into(), QueryClass::UnaryNoIndex, model_a.clone());

    #[allow(clippy::disallowed_methods)]
    // lint:allow(no-raw-threads): publish/read race stress test needs raw racing threads; nothing output-relevant is computed
    std::thread::scope(|scope| {
        let registry = &registry;
        let (model_a, model_b, schema) = (&model_a, &model_b, &schema);
        scope.spawn(move || {
            for i in 0..200 {
                let model = if i % 2 == 0 { model_b } else { model_a };
                registry.publish("oracle".into(), QueryClass::UnaryNoIndex, model.clone());
            }
        });
        for reader in 0..2u64 {
            scope.spawn(move || {
                let site = "oracle".into();
                let mut generator = SampleGenerator::new(300 + reader);
                for _ in 0..300 {
                    // Raw lookup: the snapshot is one of the two published
                    // models in its entirety, never a mixture or a miss.
                    let entry = registry
                        .get(&site, QueryClass::UnaryNoIndex)
                        .expect("model never absent during swaps");
                    assert!(
                        entry.model.coefficients == model_a.coefficients
                            || entry.model.coefficients == model_b.coefficients,
                        "reader saw a torn model"
                    );
                    assert!(entry.version >= 1);
                    // Full estimation path across the swap.
                    let query = generator.generate(QueryClass::UnaryNoIndex, schema);
                    let est = registry
                        .estimate(&mdbs_core::correction::EstimateQuery::raw(
                            &site, schema, &query, 1.0,
                        ))
                        .expect("estimate never absent during swaps");
                    assert!(est.estimate.is_finite());
                }
            });
        }
    });
    assert_eq!(registry.version(), 201, "all publishes counted");
    assert_eq!(registry.len(), 1);
}
