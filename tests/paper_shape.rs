//! Shape-level reproduction checks: every qualitative claim of the paper's
//! evaluation (§5) must hold in this implementation. Absolute numbers are
//! allowed to differ (our substrate is a simulator); who wins, by roughly
//! what factor, and where the knees fall must match.

use mdbs_bench::experiments::fig4_9::multi_wins;
use mdbs_bench::experiments::{
    average_improvement, fig1, fig10, fig4_9, states_sweep, table5, table6, test_points,
    Table5Config,
};
use mdbs_core::classes::QueryClass;
use mdbs_core::validate::quality;

/// Figure 1: the cost of one query grows dramatically and super-linearly
/// with the number of concurrent processes (paper: 3.80 s → 124.02 s).
#[test]
fn fig1_cost_explodes_with_contention() {
    let r = fig1(3);
    assert!(r.dynamic_ratio() > 10.0, "ratio {:.1}", r.dynamic_ratio());
    let costs: Vec<f64> = r.points.iter().map(|p| p.1).collect();
    assert!(
        costs.windows(2).filter(|w| w[1] >= w[0]).count() >= costs.len() * 3 / 4,
        "cost is not broadly monotone in load"
    );
}

/// Table 5 shape, all six combinations:
/// multi-states R² high, one-state visibly worse, static approach 1 great
/// on its own data but poor in the dynamic environment.
#[test]
fn table5_shape_holds() {
    let t5 = table5(&Table5Config::quick()).expect("table 5 runs");
    assert_eq!(t5.combos.len(), 6);
    for combo in &t5.combos {
        let multi = &combo.derived.model;
        let one = &combo.derived.one_state;
        assert!(
            multi.fit.r_squared > one.fit.r_squared,
            "{}: multi {} <= one-state {}",
            combo.label,
            multi.fit.r_squared,
            one.fit.r_squared
        );
        assert!(
            combo.static1.model.fit.r_squared > 0.9,
            "{}: static model should fit its own static data",
            combo.label
        );
        let q_multi = quality(&test_points(&combo.points, 0));
        let q_static = quality(&test_points(&combo.points, 2));
        assert!(
            q_multi.good_pct > q_static.good_pct,
            "{}: static ({}) not worse than multi ({})",
            combo.label,
            q_static.good_pct,
            q_multi.good_pct
        );
    }
    // Averaged improvement over one-state is clearly positive (paper:
    // +27.0 pp very-good, +20.2 pp good).
    let (d_vg, d_g) = average_improvement(&t5);
    assert!(d_vg > 5.0, "very-good improvement only {d_vg:.1} pp");
    assert!(d_g > 5.0, "good improvement only {d_g:.1} pp");
}

/// Figures 4–9: the multi-states estimates track observed costs better
/// than the one-state estimates in (almost) every figure.
#[test]
fn figures_4_to_9_multi_states_tracks_better() {
    let mut cfg = Table5Config::quick();
    cfg.test_queries = 30;
    let t5 = table5(&cfg).expect("table 5 runs");
    let figs = fig4_9(&t5);
    assert_eq!(figs.figures.len(), 6);
    assert!(
        multi_wins(&figs) >= 5,
        "multi wins only {}/6",
        multi_wins(&figs)
    );
}

/// §5 text: more contention states → better model, with diminishing
/// returns; a small number (3–6) suffices.
#[test]
fn states_sweep_shows_diminishing_returns() {
    let s = states_sweep(QueryClass::UnaryNonClusteredIndex, 360, 6).expect("sweep runs");
    let first = s.points.first().expect("nonempty");
    let last = s.points.last().expect("nonempty");
    assert_eq!(first.0, 1);
    assert!(last.0 >= 4);
    assert!(last.1 - first.1 > 0.2, "gain {}", last.1 - first.1);
    assert!(last.1 > 0.9, "final R² {}", last.1);
    // SEE decreases from the static model to the multi-states ones.
    assert!(last.2 < first.2);
}

/// Table 6: under clustered contention, ICMA's boundaries are at least as
/// good as IUPMA's at the same state budget, on the same data.
#[test]
fn table6_icma_at_least_matches_iupma() {
    let t = table6(QueryClass::UnaryNoIndex, Some(240), 50).expect("table 6 runs");
    let iupma = t.row("IUPMA").expect("IUPMA row");
    let icma = t.row("ICMA").expect("ICMA row");
    assert!(
        icma.r_squared >= iupma.r_squared - 0.02,
        "ICMA {} vs IUPMA {}",
        icma.r_squared,
        iupma.r_squared
    );
    assert!(icma.states >= 2 && iupma.states >= 2);
}

/// Figure 10: the probing-cost distribution in the clustered environment
/// is multi-modal.
#[test]
fn fig10_contention_is_multimodal() {
    let r = fig10(500, 40);
    assert!(r.modes() >= 2, "only {} modes", r.modes());
    assert!(r.summary.max > 2.0 * r.summary.min);
}

/// §5 text: small-cost queries have worse (relative) estimates than
/// large-cost queries.
#[test]
fn small_cost_queries_estimate_worse() {
    let mut cfg = Table5Config::quick();
    cfg.test_queries = 60;
    let t5 = table5(&cfg).expect("table 5 runs");
    let mut small_err = Vec::new();
    let mut large_err = Vec::new();
    for combo in &t5.combos {
        let points = test_points(&combo.points, 0);
        let mut sorted: Vec<f64> = points.iter().map(|p| p.observed).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = sorted[sorted.len() / 2];
        for p in &points {
            let err = p.relative_error();
            if err.is_finite() {
                if p.observed < median {
                    small_err.push(err);
                } else {
                    large_err.push(err);
                }
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(
        mean(&small_err) > mean(&large_err),
        "small-cost mean err {:.3} <= large-cost {:.3}",
        mean(&small_err),
        mean(&large_err)
    );
}
