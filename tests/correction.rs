//! The feedback-driven correction layer end to end (`mdbs_core::correction`
//! + `mdbs_core::server`).
//!
//! The contract under test: with correction enabled the serving loop stays
//! a pure function of `(trace, seed, config)` — report, flight dump and
//! stripped telemetry byte-identical at any worker count — the escalation
//! ladder fires in order (correct → incremental refit → suspend →
//! rederive) on a drifting site, and the corrected run's pooled estimate
//! error beats the uncorrected run on the same trace.

use mdbs_core::catalog::{GlobalCatalog, SiteId};
use mdbs_core::classes::QueryClass;
use mdbs_core::derive::{derive_cost_model, DerivationConfig};
use mdbs_core::maintenance::MaintenanceConfig;
use mdbs_core::model::ModelAccumulator;
use mdbs_core::pipeline::PipelineCtx;
use mdbs_core::registry::ModelRegistry;
use mdbs_core::server::{fleet_from_catalog, EstimationServer, RequestTrace, ServeConfig};
use mdbs_core::states::StateAlgorithm;
use mdbs_obs::json::Json;
use mdbs_sim::datagen::standard_database;
use mdbs_sim::{ContentionProfile, LoadBuilder, MdbsAgent, VendorProfile};

fn oracle_agent(env_seed: u64) -> MdbsAgent {
    let mut agent = MdbsAgent::new(VendorProfile::oracle8(), standard_database(42), env_seed);
    agent.set_load_builder(LoadBuilder::new(ContentionProfile::Uniform {
        lo: 20.0,
        hi: 125.0,
    }));
    agent
}

fn seeded_catalog() -> GlobalCatalog {
    let mut agent = oracle_agent(40);
    let derived = derive_cost_model(
        &mut agent,
        QueryClass::UnaryNoIndex,
        StateAlgorithm::Iupma,
        &DerivationConfig::quick(),
        &mut PipelineCtx::seeded(41),
    )
    .expect("seed derivation succeeds");
    let mut catalog = GlobalCatalog::new();
    let site = SiteId::from("oracle");
    catalog.insert_model(
        site.clone(),
        QueryClass::UnaryNoIndex,
        derived.model.clone(),
    );
    catalog.insert_accumulator(
        site,
        QueryClass::UnaryNoIndex,
        ModelAccumulator::from_observations(&derived.model, &derived.observations),
    );
    catalog
}

const G1_SQLS: &[&str] = &[
    "select a1 from R2 where a2 < 100",
    "select a1, a5 from R8 where a5 > 100 and a6 < 500",
    "select a3 from R4 where a4 > 200",
    "select a1, a3 from R6 where a6 < 900",
    "select a5 from R10 where a7 > 50",
];

/// Healthy warmup traffic, then a durable `factor`x I/O degradation, then
/// enough observes for the correction layer to react, with interleaved
/// requests exercising corrected answers throughout. At 12x the trace
/// walks the whole escalation ladder: cells saturate (→ escalated refit),
/// saturate again (→ suspension), and the raw estimates finally trip the
/// drift monitor (→ rederivation). At a mild 1.7x the bias sits in the
/// drift monitor's blind spot (within the 2x good threshold) and below the
/// saturation rung — the regime the correction layer exists for.
fn drift_trace(factor: f64) -> String {
    let mut t = String::from("# correction drift trace\n");
    let mut at = 0.0;
    for i in 0..20 {
        t.push_str(&format!(
            "@{at:.1} observe oracle {}\n",
            G1_SQLS[i % G1_SQLS.len()]
        ));
        at += 1.0;
        if i % 4 == 3 {
            t.push_str(&format!(
                "@{at:.1} request oracle {}\n",
                G1_SQLS[(i + 2) % G1_SQLS.len()]
            ));
            at += 1.0;
        }
    }
    t.push_str(&format!("@{at:.1} degrade oracle {factor:.1}\n"));
    at += 1.0;
    for i in 0..48 {
        t.push_str(&format!(
            "@{at:.1} observe oracle {}\n",
            G1_SQLS[i % G1_SQLS.len()]
        ));
        at += 1.0;
        if i % 4 == 1 {
            t.push_str(&format!(
                "@{at:.1} request oracle {}\n",
                G1_SQLS[(i + 3) % G1_SQLS.len()]
            ));
            at += 1.0;
        }
    }
    t.push_str(&format!("@{:.1} request oracle {}\n", at + 2.0, G1_SQLS[0]));
    t
}

fn correction_config(workers: usize, correction: bool) -> ServeConfig {
    ServeConfig::builder()
        .queue_capacity(8)
        .batch_max(4)
        .batch_delay_s(0.05)
        .service_cost_s(0.05)
        .deadline_s(1.0)
        // Volume-triggered refits off: only the escalation ladder refits.
        .refit_threshold(usize::MAX)
        .workers(Some(workers))
        .heartbeat_s(20.0)
        .flight_capacity(512)
        .correction(correction)
        .build()
        .expect("sane config")
}

fn maintenance_config() -> MaintenanceConfig {
    MaintenanceConfig::builder()
        .window(20)
        .min_observations(10)
        .min_good_fraction(0.5)
        .build()
        .expect("sane config")
}

struct LoopRun {
    rendered: String,
    telemetry: String,
    flight: String,
    report: mdbs_core::server::ServeReport,
}

fn run_loop(
    catalog: &GlobalCatalog,
    trace: &RequestTrace,
    workers: usize,
    correction: bool,
) -> LoopRun {
    let registry = ModelRegistry::from_catalog(catalog);
    let fleet = fleet_from_catalog(
        catalog,
        maintenance_config(),
        DerivationConfig::quick(),
        StateAlgorithm::Iupma,
        |site| site.0 == "oracle",
    )
    .expect("fleet builds from the catalog");
    let mut server = EstimationServer::new(registry, fleet, correction_config(workers, correction));
    let mut ctx = PipelineCtx::traced(9);
    let report = server.run(
        trace,
        |site: &SiteId, seed: u64| (site.0 == "oracle").then(|| oracle_agent(seed)),
        &mut ctx,
    );
    LoopRun {
        rendered: report.rendered.clone(),
        telemetry: mdbs_obs::telemetry::strip_wall_clock(&ctx.telemetry.render_jsonl()),
        flight: server.recorder().dump_jsonl(),
        report,
    }
}

/// `(kind, level)` for every flight event record, in recording order.
fn event_seq(flight_jsonl: &str) -> Vec<(String, String)> {
    let mut seq = Vec::new();
    for line in flight_jsonl.lines() {
        let record = mdbs_obs::json::parse(line)
            .unwrap_or_else(|e| panic!("unparseable flight record `{line}`: {e:?}"));
        let Some(kind) = record.get("kind").and_then(Json::as_str) else {
            continue;
        };
        let level = record
            .get("level")
            .and_then(Json::as_str)
            .unwrap_or_default();
        seq.push((kind.to_string(), level.to_string()));
    }
    seq
}

#[test]
fn corrected_loop_is_byte_identical_across_worker_counts() {
    let catalog = seeded_catalog();
    let trace = RequestTrace::parse(&drift_trace(12.0));
    assert!(trace.errors.is_empty(), "{:?}", trace.errors);

    let serial = run_loop(&catalog, &trace, 1, true);
    assert!(
        serial.report.corrections_applied > 0,
        "correction never fired:\n{}",
        serial.rendered
    );
    for workers in [2, 8] {
        let run = run_loop(&catalog, &trace, workers, true);
        assert_eq!(serial.rendered, run.rendered, "report ({workers} workers)");
        assert_eq!(
            serial.telemetry, run.telemetry,
            "stripped telemetry ({workers} workers)"
        );
        assert_eq!(serial.flight, run.flight, "flight dump ({workers} workers)");
    }
}

#[test]
fn escalation_ladder_fires_in_order_on_a_drifting_site() {
    let catalog = seeded_catalog();
    let trace = RequestTrace::parse(&drift_trace(12.0));
    let run = run_loop(&catalog, &trace, 2, true);

    let seq = event_seq(&run.flight);
    let pos = |kind: &str, level: &str| {
        seq.iter()
            .position(|(k, l)| k == kind && (level.is_empty() || l == level))
    };
    let refit_escalation = pos("escalate", "refit").unwrap_or_else(|| {
        panic!(
            "no refit escalation in flight events: {seq:?}\n{}",
            run.rendered
        )
    });
    let suspend_escalation = pos("escalate", "suspend").unwrap_or_else(|| {
        panic!(
            "no suspend escalation in flight events: {seq:?}\n{}",
            run.rendered
        )
    });
    let rederive = pos("rederive", "").unwrap_or_else(|| {
        panic!(
            "no rederivation in flight events: {seq:?}\n{}",
            run.rendered
        )
    });
    assert!(
        refit_escalation < suspend_escalation,
        "refit escalation must precede suspension: {seq:?}"
    );
    assert!(
        suspend_escalation < rederive,
        "suspension must precede rederivation: {seq:?}"
    );
    assert!(
        run.report.correction_escalations >= 2,
        "both ladder rungs counted:\n{}",
        run.rendered
    );
    assert!(
        run.report.rederivations >= 1,
        "drift monitor tripped after suspension:\n{}",
        run.rendered
    );
    assert!(run.report.corrections_applied > 0, "{}", run.rendered);
}

#[test]
fn correction_beats_uncorrected_serving_on_a_drifting_site() {
    // A mild durable degradation: too small for the 2x drift monitor or
    // the saturation rung, so neither run rebuilds — the uncorrected run
    // simply keeps serving ~40% biased estimates while the corrected run
    // divides the bias out.
    let catalog = seeded_catalog();
    let trace = RequestTrace::parse(&drift_trace(1.7));
    let on = run_loop(&catalog, &trace, 2, true);
    let off = run_loop(&catalog, &trace, 2, false);

    assert!(off.report.corrections_applied == 0);
    assert!(
        on.report.ledger_p50_abs_rel_err < off.report.ledger_p50_abs_rel_err,
        "correction must lower pooled p50 |rel err|: on {} vs off {}\non:\n{}\noff:\n{}",
        on.report.ledger_p50_abs_rel_err,
        off.report.ledger_p50_abs_rel_err,
        on.rendered,
        off.rendered
    );
}

#[test]
fn correction_off_matches_legacy_rendering() {
    // With correction disabled every answered line keeps the legacy
    // `[vN SL]` provenance annotation — no `±` confidence suffix — and no
    // correction summary line is rendered.
    let catalog = seeded_catalog();
    let trace = RequestTrace::parse(&drift_trace(12.0));
    let off = run_loop(&catalog, &trace, 2, false);
    assert!(!off.rendered.contains('±'), "{}", off.rendered);
    assert!(!off.rendered.contains("correction:"), "{}", off.rendered);
    // And with it enabled, at least one answered line carries the
    // confidence annotation.
    let on = run_loop(&catalog, &trace, 2, true);
    assert!(on.rendered.contains('±'), "{}", on.rendered);
    assert!(on.rendered.contains("correction:"), "{}", on.rendered);
}
