#!/usr/bin/env sh
# Full offline verification gate. The workspace has a zero-external-
# dependency policy, so everything here must succeed with no network
# access and a cold cargo cache.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> ci.sh: all checks passed"
