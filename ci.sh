#!/usr/bin/env sh
# Full offline verification gate. The workspace has a zero-external-
# dependency policy, so everything here must succeed with no network
# access and a cold cargo cache.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> mdbs-lint (determinism/hermeticity policy, twice, byte-compared)"
# Exit 0 with nothing printed means a clean tree; any finding fails the
# gate. Running twice and byte-comparing both the text and the --json
# output asserts the lint's own determinism promise (the workspace passes
# — serial-only-escape, unregistered-metric, expired-deprecation — run
# inside the same invocation, so they are covered by the same cmp).
LINT_DIR="${TMPDIR:-/tmp}/mdbs-ci-lint.$$"
mkdir -p "$LINT_DIR"
./target/release/mdbs-lint . --json "$LINT_DIR/first.json" > "$LINT_DIR/first.txt" || {
  echo "mdbs-lint found policy violations:" >&2
  cat "$LINT_DIR/first.txt" >&2
  rm -rf "$LINT_DIR"
  exit 1
}
./target/release/mdbs-lint . --json "$LINT_DIR/second.json" > "$LINT_DIR/second.txt"
cmp "$LINT_DIR/first.txt" "$LINT_DIR/second.txt"
cmp "$LINT_DIR/first.json" "$LINT_DIR/second.json"
./target/release/lint-json-check "$LINT_DIR/first.json"
rm -rf "$LINT_DIR"

echo "==> telemetry registry covers the serving-loop interface names"
# The committed registry must pin every serve.correction.* / serve.ledger.*
# name the correction and observability layers emit — the names the stats
# subcommand and the determinism gates key on.
for name in \
  serve.correction.applied serve.correction.cells serve.correction.escalations \
  serve.correction.evictions serve.correction.samples \
  serve.ledger.evictions "serve.ledger.\*"; do
  grep -q "^$name " crates/lint/telemetry.registry || {
    echo "telemetry.registry is missing \`$name\`" >&2
    exit 1
  }
done

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo doc --offline --no-deps (deny rustdoc warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace

echo "==> cargo test --examples (examples as tests)"
cargo test -q --offline --workspace --examples

echo "==> suffstats parity gate (legacy full-QR vs Gram engines)"
# Redundant with the workspace test run above by design: the parity suite
# is the contract that lets the Gram engine stay the default, so it gets
# its own named gate that survives any future test-partitioning.
cargo test -q --offline -p mdbs-bench --test suffstats_parity

echo "==> bench --json smoke (fit_suffstats n=00100)"
BENCH_JSON="${TMPDIR:-/tmp}/mdbs-ci-bench.$$.json"
cargo bench -q --offline --bench fit_suffstats -- "n=00100" --json "$BENCH_JSON" > /dev/null
./target/release/bench-json-check "$BENCH_JSON"
rm -f "$BENCH_JSON"

echo "==> repro fig1 --quick --telemetry (JSONL smoke)"
# repro validates every telemetry line parses before writing and exits
# non-zero otherwise, so the exit status is the assertion; the file
# check below just guards against an accidentally empty stream.
TELEMETRY_SMOKE="${TMPDIR:-/tmp}/mdbs-ci-telemetry.jsonl"
./target/release/repro fig1 --quick --telemetry "$TELEMETRY_SMOKE" > /dev/null
test -s "$TELEMETRY_SMOKE"
rm -f "$TELEMETRY_SMOKE"

echo "==> repro parallel --quick (serial-vs-parallel identity)"
# The runner itself fails if any worker count's catalog diverges from the
# serial one.
./target/release/repro parallel --quick > /dev/null

echo "==> derive --jobs 1/2/8 -> byte-identical catalogs"
PAR_DIR="${TMPDIR:-/tmp}/mdbs-ci-parallel.$$"
mkdir -p "$PAR_DIR"
for j in 1 2 8; do
  ./target/release/mdbs-qcost derive --site all --class g1 --seed 7 \
    --jobs "$j" --out "$PAR_DIR/catalog-$j.txt" > /dev/null
done
cmp "$PAR_DIR/catalog-1.txt" "$PAR_DIR/catalog-2.txt"
cmp "$PAR_DIR/catalog-1.txt" "$PAR_DIR/catalog-8.txt"
rm -rf "$PAR_DIR"

echo "==> derive -> archive -> restore -> byte-identical catalogs (--jobs 1/2)"
# The versioned snapshot store round trip: the text catalog archived to
# the binary form and restored back must reproduce the original bytes
# exactly (Gram accumulator blocks included), independent of --jobs.
ARC_DIR="${TMPDIR:-/tmp}/mdbs-ci-archive.$$"
mkdir -p "$ARC_DIR"
for j in 1 2; do
  ./target/release/mdbs-qcost derive --site all --class g1 --seed 11 \
    --jobs "$j" --out "$ARC_DIR/catalog-$j.txt" > /dev/null
  ./target/release/mdbs-qcost archive --catalog "$ARC_DIR/catalog-$j.txt" \
    --dest "file:$ARC_DIR/catalog-$j.mdbc" > /dev/null
  ./target/release/mdbs-qcost restore --archive "file:$ARC_DIR/catalog-$j.mdbc" \
    --out "$ARC_DIR/restored-$j.txt" > /dev/null
  cmp "$ARC_DIR/catalog-$j.txt" "$ARC_DIR/restored-$j.txt"
done
# The binary archives themselves are byte-identical across worker counts.
cmp "$ARC_DIR/catalog-1.mdbc" "$ARC_DIR/catalog-2.mdbc"
rm -rf "$ARC_DIR"

echo "==> catalog snapshot store gate (round trips, delta replay, corruption)"
# Redundant with the workspace test run by design: restore(base + deltas)
# byte-identical to the full snapshot is the contract that lets the
# maintenance loop append deltas instead of rewriting, so it keeps its
# own named gate.
cargo test -q --offline -p mdbs-bench --test catalog_store

echo "==> serve --loop --jobs 1/2/8 -> byte-identical report + stripped telemetry"
SERVE_DIR="${TMPDIR:-/tmp}/mdbs-ci-serve.$$"
mkdir -p "$SERVE_DIR"
./target/release/mdbs-qcost derive --site oracle --class g1 --seed 7 \
  --out "$SERVE_DIR/catalog.txt" > /dev/null
for j in 1 2 8; do
  # Once without telemetry: reports must be byte-identical. Once with:
  # after strip-telemetry removes wall_ms and pool.sched.* scheduling
  # metrics, the JSONL streams must be byte-identical too.
  ./target/release/mdbs-qcost serve --loop --catalog "$SERVE_DIR/catalog.txt" \
    --trace examples/serve_loop.trace --queue 4 --batch 2 --batch-delay 0.05 \
    --service-cost 0.2 --deadline 0.5 --refit 20 --drift-window 20 \
    --drift-min 8 --drift-fraction 0.65 --seed 7 --jobs "$j" \
    > "$SERVE_DIR/out-$j.txt"
  ./target/release/mdbs-qcost serve --loop --catalog "$SERVE_DIR/catalog.txt" \
    --trace examples/serve_loop.trace --queue 4 --batch 2 --batch-delay 0.05 \
    --service-cost 0.2 --deadline 0.5 --refit 20 --drift-window 20 \
    --drift-min 8 --drift-fraction 0.65 --seed 7 --jobs "$j" \
    --heartbeat 10 --flight-recorder "$SERVE_DIR/flight-$j.jsonl" \
    --report-json "$SERVE_DIR/report-$j.json" \
    --telemetry "$SERVE_DIR/tel.jsonl" > /dev/null
  ./target/release/strip-telemetry "$SERVE_DIR/tel.jsonl" > "$SERVE_DIR/tel-$j.txt"
  ./target/release/strip-telemetry "$SERVE_DIR/flight-$j.jsonl" \
    > "$SERVE_DIR/flight-$j.txt"
done
cmp "$SERVE_DIR/out-1.txt" "$SERVE_DIR/out-2.txt"
cmp "$SERVE_DIR/out-1.txt" "$SERVE_DIR/out-8.txt"
cmp "$SERVE_DIR/tel-1.txt" "$SERVE_DIR/tel-2.txt"
cmp "$SERVE_DIR/tel-1.txt" "$SERVE_DIR/tel-8.txt"
# Flight records carry no wall-clock at all, so the dumps must already be
# byte-identical across worker counts after the strip pass.
cmp "$SERVE_DIR/flight-1.txt" "$SERVE_DIR/flight-2.txt"
cmp "$SERVE_DIR/flight-1.txt" "$SERVE_DIR/flight-8.txt"
cmp "$SERVE_DIR/report-1.json" "$SERVE_DIR/report-2.json"
cmp "$SERVE_DIR/report-1.json" "$SERVE_DIR/report-8.json"
# The committed trace must exercise both online-maintenance paths while
# still answering requests.
grep -q "incremental refit" "$SERVE_DIR/out-1.txt"
grep -q "rederived" "$SERVE_DIR/out-1.txt"
grep -q "answered" "$SERVE_DIR/out-1.txt"

echo "==> serve --loop observability (heartbeats, ledger, stats round-trip)"
# The 58s committed trace at 10s virtual heartbeats must beat at least
# twice, and the accuracy ledger must populate in the human report.
HB_COUNT=$(grep -c '"kind":"heartbeat"' "$SERVE_DIR/flight-1.jsonl")
test "$HB_COUNT" -ge 2
grep -q "accuracy ledger" "$SERVE_DIR/out-1.txt"
grep -q '"ledger":\[{' "$SERVE_DIR/report-1.json"
# `stats` strictly re-parses every line of both JSONL streams through the
# workspace's own JSON reader, so a clean run is schema validation.
./target/release/mdbs-qcost stats "$SERVE_DIR/tel.jsonl" > "$SERVE_DIR/stats-tel.txt"
grep -q "heartbeats:" "$SERVE_DIR/stats-tel.txt"
grep -q "accuracy ledger" "$SERVE_DIR/stats-tel.txt"
./target/release/mdbs-qcost stats "$SERVE_DIR/flight-1.jsonl" \
  > "$SERVE_DIR/stats-flight.txt"
grep -q "flight records by kind:" "$SERVE_DIR/stats-flight.txt"

echo "==> serve --loop --correction (drift trace: corrected p50 beats uncorrected)"
# The committed drift trace degrades the site 4x mid-run. The corrected
# replay must stay byte-identical at every --jobs, apply corrections, and
# land a strictly lower pooled ledger p50 |relative error| than the same
# replay with the correction layer off.
for j in 1 2 8; do
  # The report-json path echoes into stdout, so the byte-compared runs
  # skip it; a separate jobs-2 run below captures the report (which the
  # in-repo tests pin as jobs-independent).
  ./target/release/mdbs-qcost serve --loop --catalog "$SERVE_DIR/catalog.txt" \
    --trace examples/serve_drift.trace --refit 500 --drift-window 20 \
    --drift-min 10 --drift-fraction 0.5 --seed 7 --jobs "$j" --correction \
    > "$SERVE_DIR/corr-out-$j.txt"
done
cmp "$SERVE_DIR/corr-out-1.txt" "$SERVE_DIR/corr-out-2.txt"
cmp "$SERVE_DIR/corr-out-1.txt" "$SERVE_DIR/corr-out-8.txt"
grep -q "correction:" "$SERVE_DIR/corr-out-1.txt"
./target/release/mdbs-qcost serve --loop --catalog "$SERVE_DIR/catalog.txt" \
  --trace examples/serve_drift.trace --refit 500 --drift-window 20 \
  --drift-min 10 --drift-fraction 0.5 --seed 7 --jobs 2 --correction \
  --report-json "$SERVE_DIR/corr-report.json" > /dev/null
./target/release/mdbs-qcost serve --loop --catalog "$SERVE_DIR/catalog.txt" \
  --trace examples/serve_drift.trace --refit 500 --drift-window 20 \
  --drift-min 10 --drift-fraction 0.5 --seed 7 --jobs 2 \
  --report-json "$SERVE_DIR/plain-report.json" > /dev/null
CORR_P50=$(grep -o '"ledger_p50_abs_rel_err":[0-9.eE+-]*' \
  "$SERVE_DIR/corr-report.json" | cut -d: -f2)
PLAIN_P50=$(grep -o '"ledger_p50_abs_rel_err":[0-9.eE+-]*' \
  "$SERVE_DIR/plain-report.json" | cut -d: -f2)
CORR_APPLIED=$(grep -o '"corrections_applied":[0-9]*' \
  "$SERVE_DIR/corr-report.json" | cut -d: -f2)
test "$CORR_APPLIED" -gt 0
awk -v on="$CORR_P50" -v off="$PLAIN_P50" 'BEGIN {
  if (!(on + 0 < off + 0)) {
    printf "correction gate failed: corrected p50 %s !< uncorrected p50 %s\n", on, off
    exit 1
  }
  printf "correction gate: corrected p50 %s < uncorrected p50 %s\n", on, off
}'
rm -rf "$SERVE_DIR"

echo "==> bench --json smoke (serve_loop virtual metrics)"
SERVE_BENCH_JSON="${TMPDIR:-/tmp}/mdbs-ci-serve-bench.$$.json"
cargo bench -q --offline --bench serve_loop -- virtual --json "$SERVE_BENCH_JSON" > /dev/null
./target/release/bench-json-check "$SERVE_BENCH_JSON"
rm -f "$SERVE_BENCH_JSON"

echo "==> bench --json smoke (serve_observability recording overhead)"
# The bench itself asserts full recording costs zero *virtual* throughput
# (bit-identical makespan and latency percentiles vs recording-off).
OBS_BENCH_JSON="${TMPDIR:-/tmp}/mdbs-ci-obs-bench.$$.json"
cargo bench -q --offline --bench serve_observability -- virtual \
  --json "$OBS_BENCH_JSON" > /dev/null
./target/release/bench-json-check "$OBS_BENCH_JSON"
rm -f "$OBS_BENCH_JSON"

echo "==> bench --json smoke (serve_correction overhead)"
# The bench itself asserts the correction layer costs zero *virtual*
# throughput (bit-identical makespan and latency percentiles vs
# correction-off).
CORR_BENCH_JSON="${TMPDIR:-/tmp}/mdbs-ci-corr-bench.$$.json"
cargo bench -q --offline --bench serve_correction -- virtual \
  --json "$CORR_BENCH_JSON" > /dev/null
./target/release/bench-json-check "$CORR_BENCH_JSON"
rm -f "$CORR_BENCH_JSON"

echo "==> bench --json smoke (catalog_store size/speed/append criteria)"
# The bench self-asserts the binary format's acceptance criteria: >= 3x
# smaller and >= 5x faster to load than the text catalog at 2 vendors x
# 3 classes with accumulators, and delta append cost independent of
# total catalog size.
CAT_BENCH_JSON="${TMPDIR:-/tmp}/mdbs-ci-catalog-bench.$$.json"
cargo bench -q --offline --bench catalog_store -- --json "$CAT_BENCH_JSON" > /dev/null
./target/release/bench-json-check "$CAT_BENCH_JSON"
rm -f "$CAT_BENCH_JSON"

echo "==> ci.sh: all checks passed"
